"""Tests for email parsing and comparison."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.emails import email_similarity, parse_email, same_server

MERGE = 0.85
T_RV = 0.7


class TestParseEmail:
    def test_basic(self):
        parsed = parse_email("stonebraker@csail.mit.edu")
        assert parsed.account == "stonebraker"
        assert parsed.domain == "csail.mit.edu"
        assert parsed.domain_core == "mit"

    def test_account_tokens(self):
        assert parse_email("john.doe@x.com").account_tokens == ("john", "doe")
        assert parse_email("john_doe@x.com").account_tokens == ("john", "doe")
        assert parse_email("jdoe@x.com").account_tokens == ("jdoe",)

    def test_invalid(self):
        assert parse_email("not an email") is None
        assert parse_email("two@@ats.com") is None
        assert parse_email("") is None

    def test_case_insensitive(self):
        assert parse_email("Bob@Example.COM").raw == "bob@example.com"


class TestSameServer:
    def test_same_organisation(self):
        assert same_server("a@csail.mit.edu", "b@mit.edu")
        assert not same_server("a@mit.edu", "a@berkeley.edu")

    def test_invalid_inputs(self):
        assert not same_server("garbage", "a@mit.edu")


class TestEmailSimilarity:
    def test_exact_is_key(self):
        assert email_similarity("a@b.edu", "a@b.edu") == 1.0

    def test_same_account_elsewhere_is_below_trv(self):
        # "hao@" belongs to many Haos; must not open boolean boosts.
        score = email_similarity("hao@csail.mit.edu", "hao@acm.org")
        assert score < T_RV

    def test_typo_same_server_is_strong(self):
        score = email_similarity("stonebraker@mit.edu", "stonebraker2@mit.edu")
        assert T_RV < score < 1.0

    def test_unrelated(self):
        assert email_similarity("alice@a.com", "bob@b.com") < 0.3

    def test_invalid(self):
        assert email_similarity("garbage", "a@b.com") == 0.0

    @given(
        st.sampled_from(
            [
                "stonebraker@csail.mit.edu",
                "stonebraker@mit.edu",
                "mike@gmail.com",
                "m.stonebraker@mit.edu",
                "wong@berkeley.edu",
            ]
        ),
        st.sampled_from(
            [
                "stonebraker@csail.mit.edu",
                "stonebraker@gmail.com",
                "eugene@berkeley.edu",
            ]
        ),
    )
    @settings(max_examples=15)
    def test_range_and_symmetry(self, left, right):
        score = email_similarity(left, right)
        assert 0.0 <= score <= 1.0
        assert score == pytest.approx(email_similarity(right, left))

    def test_never_merges_without_exact_match_except_typos(self):
        # Everything short of exact equality or a same-server typo
        # stays below the merge threshold.
        pairs = [
            ("davis@cs.wisc.edu", "davis@gmail.com"),
            ("john.doe@x.com", "john_doe@y.com"),
            ("adavis@x.com", "amydavis@x.com"),
        ]
        for left, right in pairs:
            assert email_similarity(left, right) < MERGE, (left, right)
