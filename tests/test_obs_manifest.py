"""Run manifests: schema validity, round-trip, and the invariance
contract — the manifest's invariant view (everything but the
``execution`` / ``artifacts`` sections) must be byte-equal with
telemetry on or off, and for a resumed run vs an uninterrupted one,
on every benchmark dataset."""

import json

import pytest

from repro.core import EngineConfig, Reconciler
from repro.datasets import generate_pim_dataset
from repro.domains import CoraDomainModel, PimDomainModel
from repro.obs import (
    MetricsRegistry,
    ProvenanceLog,
    Telemetry,
    Tracer,
    build_manifest,
    invariant_view,
    load_manifest,
    partition_digest,
    resolve_artifact,
    validate_manifest,
    write_manifest,
)
from repro.runtime import Checkpointer, CrashAtStep, InjectedFault

DATASETS = ["A", "B", "C", "D", "cora"]


@pytest.fixture(scope="module")
def datasets(tiny_cora):
    loaded = {
        name: generate_pim_dataset(name, scale=0.15) for name in "ABCD"
    }
    loaded["cora"] = tiny_cora
    return loaded


def _domain(name):
    return CoraDomainModel() if name == "cora" else PimDomainModel()


def _run(dataset, name, *, telemetry=None, every=25):
    engine = Reconciler(
        dataset.store, _domain(name), EngineConfig(), telemetry=telemetry
    )
    engine.attach_convergence(dataset.gold.entity_of, every=every)
    result = engine.run()
    return build_manifest(dataset=dataset, reconciler=engine, result=result)


def _canon(view: dict) -> str:
    return json.dumps(view, sort_keys=True)


class TestManifestShape:
    def test_validates_and_round_trips(self, datasets, tmp_path):
        manifest = _run(datasets["B"], "B")
        validate_manifest(manifest)
        path = write_manifest(manifest, tmp_path)
        assert path.name == "run.json"
        assert _canon(load_manifest(tmp_path)) == _canon(manifest)
        assert _canon(load_manifest(path)) == _canon(manifest)

    def test_partition_digest_tracks_content(self):
        base = {"Person": [["a", "b"], ["c"]]}
        assert partition_digest(base) == partition_digest(
            {"Person": [["a", "b"], ["c"]]}
        )
        assert partition_digest(base) != partition_digest(
            {"Person": [["a"], ["b", "c"]]}
        )

    def test_quality_and_convergence_recorded(self, datasets):
        manifest = _run(datasets["B"], "B")
        assert manifest["quality"], "gold datasets must produce quality"
        for scores in manifest["quality"].values():
            for family in ("pairwise", "bcubed"):
                for metric in ("precision", "recall", "f1"):
                    assert 0.0 <= scores[family][metric] <= 1.0
        samples = manifest["convergence"]
        assert len(samples) >= 2
        # keyed by the recomputation counter, strictly increasing, and
        # the last sample reflects the finished run
        keys = [sample["recomputations"] for sample in samples]
        assert keys == sorted(set(keys))
        assert samples[-1]["merges"] == manifest["counters"]["merges"]
        assert samples[-1]["queued"] == 0

    def test_resolve_artifact_relative_and_absolute(self, tmp_path):
        manifest = {"artifacts": {"provenance": "prov.jsonl", "trace": "/abs/t.json"}}
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        assert resolve_artifact(manifest, run_dir, "provenance") == run_dir / "prov.jsonl"
        assert str(resolve_artifact(manifest, run_dir, "trace")) == "/abs/t.json"
        assert resolve_artifact(manifest, run_dir, "metrics") is None


class TestInvariance:
    @pytest.mark.parametrize("name", DATASETS)
    def test_telemetry_on_vs_off(self, datasets, name, tmp_path):
        dataset = datasets[name]
        bare = _run(dataset, name)
        telemetry = Telemetry(
            tracer=Tracer(),
            metrics=MetricsRegistry(),
            provenance=ProvenanceLog(tmp_path / f"{name}.jsonl"),
        )
        observed = _run(dataset, name, telemetry=telemetry)
        assert _canon(invariant_view(bare)) == _canon(invariant_view(observed))
        # the promise is specifically about these two:
        assert bare["partition"]["digest"] == observed["partition"]["digest"]
        assert _canon(bare["quality"]) == _canon(observed["quality"])

    @pytest.mark.parametrize("name", DATASETS)
    def test_resumed_vs_uninterrupted(self, datasets, name, tmp_path):
        dataset = datasets[name]
        uninterrupted = _run(dataset, name)

        engine = Reconciler(dataset.store, _domain(name), EngineConfig())
        engine.attach_convergence(dataset.gold.entity_of, every=25)
        checkpointer = Checkpointer(tmp_path / name, every=10)
        with pytest.raises(InjectedFault):
            engine.run(checkpointer=checkpointer, step_hook=CrashAtStep(35))
        resumed = Reconciler.resume(
            checkpointer.path, store=dataset.store, domain=_domain(name)
        )
        resumed.attach_convergence(dataset.gold.entity_of, every=25)
        result = resumed.run()
        manifest = build_manifest(
            dataset=dataset, reconciler=resumed, result=result, resumed=True
        )
        assert manifest["execution"]["resumed"] is True
        assert _canon(invariant_view(uninterrupted)) == _canon(
            invariant_view(manifest)
        )
        assert uninterrupted["partition"]["digest"] == manifest["partition"]["digest"]
        assert _canon(uninterrupted["quality"]) == _canon(manifest["quality"])
        # samples are keyed by the checkpointed recomputation counter,
        # so the resumed run reproduces them exactly, boundary included
        assert uninterrupted["convergence"] == manifest["convergence"]
