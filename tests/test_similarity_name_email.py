"""Tests for the cross-attribute name-vs-email channel (§2.2)."""

import pytest

from repro.similarity.name_email import name_email_similarity


class TestSurnameAccounts:
    def test_surname_account_is_strong(self):
        score = name_email_similarity("Stonebraker, M.", "stonebraker@csail.mit.edu")
        assert score == pytest.approx(0.9)

    def test_full_given_plus_surname_is_decisive(self):
        assert (
            name_email_similarity("Michael Stonebraker", "michael.stonebraker@mit.edu")
            == 1.0
        )
        assert (
            name_email_similarity("Michael Stonebraker", "michaelstonebraker@mit.edu")
            == 1.0
        )

    def test_initial_plus_surname_is_strong_not_decisive(self):
        # "xfeng" could be Xin Feng or Xiaoming Feng.
        score = name_email_similarity("Xin Feng", "xfeng@gmail.com")
        assert 0.85 <= score <= 0.9

    def test_initial_only_given_never_scores_full(self):
        # The name has only an initial: the account cannot confirm more
        # than initial+surname.
        score = name_email_similarity("X. Feng", "xfeng@gmail.com")
        assert score < 1.0

    def test_separated_initial(self):
        score = name_email_similarity("Michael Stonebraker", "m.stonebraker@mit.edu")
        assert score >= 0.9


class TestGivenNameAccounts:
    def test_given_only_match_is_weak(self):
        score = name_email_similarity("Eugene Wong", "eugene@berkeley.edu")
        assert 0.4 <= score < 0.7

    def test_nickname_account(self):
        score = name_email_similarity("Michael Stonebraker", "mike@gmail.com")
        assert 0.4 <= score < 0.7

    def test_single_letter_prefix_rejected(self):
        # 'deborah' must not count as encoding the initial "D.".
        score = name_email_similarity("Parker, D.", "deborah_parker@bell-labs.com")
        assert score <= 0.9


class TestNegative:
    def test_unrelated(self):
        assert name_email_similarity("Eugene Wong", "stonebraker@csail.mit.edu") == 0.0

    def test_mononym_vs_unrelated_account(self):
        assert name_email_similarity("mike", "stonebraker@csail.mit.edu") == 0.0

    def test_invalid_email(self):
        assert name_email_similarity("Eugene Wong", "not-an-email") == 0.0

    def test_empty_name(self):
        assert name_email_similarity("", "a@b.com") == 0.0

    def test_range(self):
        names = ["Stonebraker, M.", "mike", "Eugene Wong", "Xin Feng"]
        emails = ["stonebraker@mit.edu", "xfeng@gmail.com", "eugene@berkeley.edu"]
        for name in names:
            for email in emails:
                assert 0.0 <= name_email_similarity(name, email) <= 1.0
