"""The HTML run report must be one self-contained file: inline SVG
charts, no scripts, no network fetches, and every manifest string
HTML-escaped on the way in."""

import dataclasses
import re

import pytest

from repro.core import EngineConfig, Reconciler
from repro.datasets import generate_pim_dataset
from repro.obs import (
    ProvenanceLog,
    Telemetry,
    Tracer,
    build_manifest,
    render_report,
    write_manifest,
    write_report,
)
from repro.domains import PimDomainModel


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("report_run")
    dataset = generate_pim_dataset("B", scale=0.15)
    log = ProvenanceLog(directory / "provenance.jsonl")
    engine = Reconciler(
        dataset.store,
        PimDomainModel(),
        EngineConfig(),
        telemetry=Telemetry(tracer=Tracer(), provenance=log),
    )
    engine.attach_convergence(dataset.gold.entity_of, every=50)
    result = engine.run()
    manifest = build_manifest(
        dataset=dataset,
        reconciler=engine,
        result=result,
        artifacts={"provenance": "provenance.jsonl"},
    )
    write_manifest(manifest, directory)
    log.close()
    return directory


class TestSelfContained:
    def test_single_file_with_inline_svg(self, run_dir):
        path = write_report(run_dir)
        assert path == run_dir / "report.html"
        html_text = path.read_text()
        assert html_text.lstrip().startswith("<!DOCTYPE html>")
        assert "<svg" in html_text

    def test_no_network_assets_or_scripts(self, run_dir):
        html_text = (run_dir / "report.html").read_text()
        assert not re.search(r"https?://", html_text)
        assert "<script" not in html_text.lower()
        assert "<link" not in html_text.lower()
        assert "@import" not in html_text

    def test_sections_present(self, run_dir):
        html_text = (run_dir / "report.html").read_text()
        for needle in (
            "Quality vs gold",
            "Convergence",
            "Phase timings",
            "Most-contested merge decisions",
            "PIM B",
        ):
            assert needle in html_text, needle

    def test_explicit_output_path(self, run_dir, tmp_path):
        target = tmp_path / "custom.html"
        assert write_report(run_dir, target) == target
        assert target.read_text() == (run_dir / "report.html").read_text()


class TestEscaping:
    def test_hostile_manifest_strings_are_escaped(self, run_dir):
        from repro.obs import load_manifest

        manifest = load_manifest(run_dir)
        manifest["run"]["dataset"] = '<img src=x onerror=alert(1)> & "quotes"'
        html_text = render_report(manifest)
        assert "<img" not in html_text
        assert "&lt;img src=x onerror=alert(1)&gt;" in html_text

    def test_renders_without_provenance(self, run_dir):
        from repro.obs import load_manifest

        manifest = load_manifest(run_dir)
        html_text = render_report(manifest, decisions=None)
        assert "<svg" in html_text

    def test_renders_with_sparse_convergence(self, run_dir):
        from repro.obs import load_manifest

        manifest = load_manifest(run_dir)
        manifest["convergence"] = manifest["convergence"][:1]
        html_text = render_report(manifest)
        assert "<!DOCTYPE html>" in html_text
