"""Tests for the dependency graph: uniqueness, edges, enrichment fusion."""

from repro.core.graph import DependencyGraph
from repro.core.nodes import EdgeType, NodeStatus, pair_key
from repro.core.partition import UnionFind


def make_graph():
    graph = DependencyGraph()
    node_ab = graph.add_pair_node("Person", "a", "b")
    node_ac = graph.add_pair_node("Person", "a", "c")
    node_bc = graph.add_pair_node("Person", "b", "c")
    return graph, node_ab, node_ac, node_bc


class TestUniqueness:
    def test_pair_node_unique_per_pair(self):
        graph = DependencyGraph()
        first = graph.add_pair_node("Person", "a", "b")
        second = graph.add_pair_node("Person", "b", "a")
        assert first is second
        assert graph.pair_nodes_created == 1

    def test_value_node_unique_per_value_pair(self):
        graph = DependencyGraph()
        first = graph.value_node("name", "x", "y", 0.8)
        second = graph.value_node("name", "y", "x", 0.8)
        assert first is second
        assert graph.value_nodes_created == 1

    def test_value_node_distinct_per_channel(self):
        graph = DependencyGraph()
        first = graph.value_node("name", "x", "y", 0.8)
        second = graph.value_node("email", "x", "y", 0.8)
        assert first is not second


class TestEdges:
    def test_typed_edges(self):
        graph, node_ab, node_ac, _ = make_graph()
        graph.add_edge(node_ab, node_ac, EdgeType.REAL)
        graph.add_edge(node_ab, node_ac, EdgeType.STRONG)
        graph.add_edge(node_ac, node_ab, EdgeType.WEAK)
        assert node_ac.key in node_ab.real_out
        assert node_ab.key in node_ac.real_in
        assert node_ac.key in node_ab.strong_out
        assert node_ac.key in node_ab.weak_in
        assert list(graph.real_out_nodes(node_ab)) == [node_ac]
        assert list(graph.strong_in_nodes(node_ac)) == [node_ab]


class TestFusion:
    def test_lone_node_rekeyed(self):
        graph = DependencyGraph()
        node = graph.add_pair_node("Person", "b", "c")
        uf = UnionFind()
        uf.union("a", "b")
        report = graph.merge_elements("a", "b", same_cluster=uf.connected)
        assert report.removed == 0
        assert [n for n in report.reactivate] == [node]
        assert node.key == pair_key("a", "c")
        # The old key resolves to the new one.
        assert graph.get("b", "c") is node
        assert graph.get("a", "c") is node

    def test_duplicate_nodes_fused(self):
        graph, node_ab, node_ac, node_bc = make_graph()
        other = graph.add_pair_node("Person", "d", "e")
        graph.add_edge(other, node_bc, EdgeType.WEAK)
        node_ac.score = 0.4
        node_bc.score = 0.6
        uf = UnionFind()
        uf.union("a", "b")
        report = graph.merge_elements(uf.find("a"), "b" if uf.find("a") == "a" else "a",
                                      same_cluster=uf.connected)
        # (a,c) and (b,c) collapse into one node carrying max score and
        # the union of neighbours.
        survivor = graph.get("a", "c")
        assert survivor is graph.get("b", "c")
        assert survivor.score == 0.6
        assert report.removed == 1
        assert other.key in survivor.weak_in

    def test_intra_cluster_node_marked_merged(self):
        graph, node_ab, _, _ = make_graph()
        uf = UnionFind()
        uf.union("a", "b")
        report = graph.merge_elements("a", "b", same_cluster=uf.connected)
        assert node_ab in report.intra
        assert node_ab.status is NodeStatus.MERGED
        assert node_ab.score == 1.0

    def test_non_merge_status_sticks_through_fusion(self):
        graph, _, node_ac, node_bc = make_graph()
        node_bc.status = NodeStatus.NON_MERGE
        uf = UnionFind()
        uf.union("a", "b")
        graph.merge_elements("a", "b", same_cluster=uf.connected)
        assert graph.get("a", "c").status is NodeStatus.NON_MERGE

    def test_value_evidence_pooled(self):
        graph = DependencyGraph()
        node_ac = graph.add_pair_node("Person", "a", "c")
        node_bc = graph.add_pair_node("Person", "b", "c")
        node_ac.add_value_evidence(graph.value_node("name", "x", "y", 0.7))
        node_bc.add_value_evidence(graph.value_node("name", "x", "z", 0.9))
        uf = UnionFind()
        uf.union("a", "b")
        graph.merge_elements("a", "b", same_cluster=uf.connected)
        survivor = graph.get("a", "c")
        # MAX over the pooled value nodes — the enrichment semantics.
        assert survivor.channel_score("name") == 0.9

    def test_resolution_chain_compresses(self):
        graph = DependencyGraph()
        graph.add_pair_node("Person", "a", "z")
        graph.add_pair_node("Person", "b", "z")
        graph.add_pair_node("Person", "c", "z")
        uf = UnionFind()
        uf.union("a", "b")
        graph.merge_elements("a", "b", same_cluster=uf.connected)
        uf.union("a", "c")
        graph.merge_elements(uf.find("a"), "c", same_cluster=uf.connected)
        # All historical keys resolve to the single surviving node.
        survivor = graph.get("a", "z")
        assert graph.get("b", "z") is survivor
        assert graph.get("c", "z") is survivor
        assert graph.fusions == 2
