"""Tests for the performance layer: feature cache, bounded kernels,
fast-path comparator exactness, prefilter soundness, and the
fine-grained contact-cache invalidation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Reconciler, ReferenceStore
from repro.domains import CoraDomainModel, PimDomainModel
from repro.perf import FeatureCache, phonetic_profile
from repro.perf.scoring import memoised_score, score_value_pair
from repro.similarity import (
    clear_similarity_caches,
    email_features,
    email_similarity,
    email_similarity_features,
    email_upper_bound,
    registered_caches,
    title_features,
    title_similarity,
    title_similarity_features,
    title_upper_bound,
    venue_features,
    venue_name_similarity,
    venue_similarity_features,
    venue_upper_bound,
)
from repro.similarity.strings import (
    damerau_levenshtein_distance,
    damerau_levenshtein_similarity,
    damerau_levenshtein_similarity_at_least,
    damerau_levenshtein_within,
)

from .conftest import example1_references


class TestFeatureCache:
    def test_hit_miss_counting(self):
        cache = FeatureCache()
        calls = []

        def compute(value):
            calls.append(value)
            return value.upper()

        assert cache.get("k", "a", compute) == "A"
        assert cache.get("k", "a", compute) == "A"
        assert cache.get("k", "b", compute) == "B"
        assert calls == ["a", "b"]
        assert cache.hits == 1
        assert cache.misses == 2
        assert len(cache) == 2

    def test_kinds_do_not_collide(self):
        cache = FeatureCache()
        assert cache.get("upper", "x", str.upper) == "X"
        assert cache.get("title", "x", str.title) == "X"
        assert cache.misses == 2

    def test_none_results_are_cached(self):
        cache = FeatureCache()
        calls = []

        def compute(value):
            calls.append(value)
            return None

        assert cache.get("k", "a", compute) is None
        assert cache.get("k", "a", compute) is None
        assert calls == ["a"]
        assert cache.hits == 1

    def test_clear_and_stats(self):
        cache = FeatureCache()
        cache.get("k", "a", str.upper)
        assert cache.clear() == 1
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["hits"] + stats["misses"] == 1

    def test_standard_extractor(self):
        cache = FeatureCache()
        extract = cache.extractor("title")
        features = extract("Query Processing in Databases")
        assert features == title_features("Query Processing in Databases")
        assert extract("Query Processing in Databases") is features

    def test_phonetic_profile(self):
        profile = phonetic_profile("Michael Stonebraker")
        assert profile.tokens == ("michael", "stonebraker")
        assert len(profile.soundex_codes) == 2
        assert len(profile.metaphone_codes) == 2
        cache = FeatureCache()
        assert cache.extractor("phonetic")("Michael Stonebraker") == profile


class TestBoundedDamerauLevenshtein:
    @given(
        st.text(alphabet="abcde ", max_size=12),
        st.text(alphabet="abcde ", max_size=12),
        st.integers(0, 14),
    )
    @settings(max_examples=400)
    def test_matches_exact_distance_within_cutoff(self, left, right, cutoff):
        exact = damerau_levenshtein_distance(left, right)
        bounded = damerau_levenshtein_within(left, right, cutoff)
        if exact <= cutoff:
            assert bounded == exact
        else:
            assert bounded is None

    def test_negative_cutoff(self):
        assert damerau_levenshtein_within("a", "b", -1) is None

    def test_equal_strings(self):
        assert damerau_levenshtein_within("same", "same", 0) == 0

    @given(
        st.text(alphabet="abcde", max_size=10),
        st.text(alphabet="abcde", max_size=10),
        st.sampled_from([0.0, 0.60, 0.65, 0.80, 0.85, 0.90, 1.0]),
    )
    @settings(max_examples=400)
    def test_similarity_at_least_thresholds(self, left, right, floor):
        exact = damerau_levenshtein_similarity(left, right)
        bounded = damerau_levenshtein_similarity_at_least(left, right, floor)
        if exact >= floor:
            assert bounded == pytest.approx(exact, abs=1e-12)
        else:
            assert bounded < floor


def _pim_values():
    """Realistic value pools: Example 1 plus adversarial variants."""
    titles, venues, emails = set(), set(), set()
    for reference in example1_references():
        titles.update(reference.get("title"))
        venues.update(reference.values.get("name", ()) if reference.class_name == "Venue" else ())
        emails.update(reference.values.get("email", ()))
    titles.update({"", "query", "Distributed query processing", "a b c d e f"})
    venues.update({"", "SIGMOD", "VLDB", "Proc. ACM SIGMOD", "journal of the acm"})
    emails.update({"", "not an email", "eugene@berkeley.edu", "e.wong@berkeley.edu",
                   "stonebraker@mit.edu", "mike@gmail.com"})
    return sorted(titles), sorted(venues), sorted(emails)


_TITLES, _VENUES, _EMAILS = _pim_values()
_FLOORS = [0.0, 0.02, 0.25, 0.5, 0.8]


class TestFastPathExactness:
    """fast(lf, rf, floor) must equal the slow comparator whenever the
    slow score clears the floor, and stay below the floor otherwise —
    the engine only tests ``score >= floor``, so decisions match."""

    @pytest.mark.parametrize("floor", _FLOORS)
    def test_title(self, floor):
        for left in _TITLES:
            for right in _TITLES:
                slow = title_similarity(left, right)
                fast = title_similarity_features(
                    title_features(left), title_features(right), floor
                )
                if slow >= floor:
                    assert fast == pytest.approx(slow, abs=1e-12), (left, right)
                else:
                    assert fast < floor, (left, right)

    @pytest.mark.parametrize("floor", _FLOORS)
    def test_venue(self, floor):
        for left in _VENUES:
            for right in _VENUES:
                slow = venue_name_similarity(left, right)
                fast = venue_similarity_features(
                    venue_features(left), venue_features(right), floor
                )
                if slow >= floor:
                    assert fast == pytest.approx(slow, abs=1e-12), (left, right)
                else:
                    assert fast < floor, (left, right)

    @pytest.mark.parametrize("floor", _FLOORS)
    def test_email(self, floor):
        for left in _EMAILS:
            for right in _EMAILS:
                slow = email_similarity(left, right)
                fast = email_similarity_features(
                    email_features(left), email_features(right), floor
                )
                assert fast == pytest.approx(slow, abs=1e-12), (left, right)


class TestUpperBoundSoundness:
    """A prefilter bound below the true score would silently drop real
    evidence; these assert bound >= truth on every pair."""

    def test_title_bound(self):
        for left in _TITLES:
            for right in _TITLES:
                bound = title_upper_bound(title_features(left), title_features(right))
                assert bound >= title_similarity(left, right) - 1e-12, (left, right)

    def test_venue_bound(self):
        for left in _VENUES:
            for right in _VENUES:
                bound = venue_upper_bound(venue_features(left), venue_features(right))
                assert bound >= venue_name_similarity(left, right) - 1e-12, (left, right)

    def test_email_bound(self):
        for left in _EMAILS:
            for right in _EMAILS:
                bound = email_upper_bound(email_features(left), email_features(right))
                assert bound >= email_similarity(left, right) - 1e-12, (left, right)


class TestChannelPrefilterNeverExcludes:
    """End-to-end over the wired channels: score_value_pair at each
    channel's liberal threshold must agree with the slow comparator on
    every value pair that clears the threshold."""

    @pytest.mark.parametrize("domain_cls", [PimDomainModel, CoraDomainModel])
    def test_channels(self, domain_cls):
        domain = domain_cls()
        pools = {
            "name": ["Michael Stonebraker", "Stonebraker, M.", "mike",
                     "Eugene Wong", "Wong, E.", ""],
            "email": _EMAILS,
            "title": _TITLES,
            "pages": ["169-180", "169", "201-210", ""],
            "year": ["1978", "1979", "2004", ""],
            "location": ["Austin, Texas", "austin tx", "Paris", ""],
        }
        venue_pool = {"name": _VENUES, "year": pools["year"], "location": pools["location"]}
        for class_name in domain.class_order():
            for channel in domain.atomic_channels(class_name):
                left_pool = (venue_pool if class_name == "Venue" else pools)[channel.left_attr]
                right_pool = (venue_pool if class_name == "Venue" else pools)[channel.right_attr]
                threshold = channel.liberal_threshold
                for left in left_pool:
                    for right in right_pool:
                        slow = channel.comparator(left, right)
                        fast = score_value_pair(channel, left, right, threshold)
                        if slow >= threshold:
                            assert fast == pytest.approx(slow, abs=1e-12), (
                                class_name, channel.name, left, right)
                        else:
                            assert fast is None or fast < threshold, (
                                class_name, channel.name, left, right)


class TestScoreMemo:
    def test_memo_reuse_and_floor_semantics(self):
        domain = PimDomainModel()
        channel = next(
            c for c in domain.atomic_channels("Article") if c.name == "title"
        )
        memo = {}
        left, right = "query processing", "query processing systems"
        score1, outcome1 = memoised_score(channel, left, right, 0.5, memo)
        score2, outcome2 = memoised_score(channel, left, right, 0.5, memo)
        assert outcome1 in ("miss", "prefiltered")
        assert outcome2 == "hit"
        assert score2 == score1
        # Raising the floor may reuse the entry; lowering it recomputes.
        score3, outcome3 = memoised_score(channel, left, right, 0.8, memo)
        assert outcome3 == "hit"
        _, outcome4 = memoised_score(channel, left, right, 0.02, memo)
        assert outcome4 in ("miss", "prefiltered")
        # After the lower-floor recompute the entry serves both floors.
        _, outcome5 = memoised_score(channel, left, right, 0.5, memo)
        assert outcome5 == "hit"


class TestRegisteredCaches:
    def test_clear_similarity_caches(self):
        # Touch a registered cache so at least one has entries.
        PimDomainModel()  # ensure the domain module's caches registered
        title_similarity("a b", "a c")
        count = clear_similarity_caches()
        assert count == len(registered_caches())
        assert count > 0
        for cached in registered_caches():
            assert cached.cache_info().currsize == 0


class TestContactCacheInvalidation:
    def test_merge_refreshes_weak_counts(self, example1_store):
        engine = Reconciler(example1_store, PimDomainModel())
        engine.build()
        # Prime the cache for p1/p4 (coAuthor contacts).
        before_l = engine._contact_roots("p1", "Person")
        before_r = engine._contact_roots("p4", "Person")
        assert engine.stats.contacts_cache_misses >= 2
        assert not (before_l & before_r)
        # Merge a contact of each side; both cached sets must refresh.
        assert engine.uf.union("p2", "p5") is not None
        after_l = engine._contact_roots("p1", "Person")
        after_r = engine._contact_roots("p4", "Person")
        assert after_l & after_r, "merged contact must become a common root"

    def test_unrelated_merge_keeps_cache_warm(self, example1_store):
        engine = Reconciler(example1_store, PimDomainModel())
        engine.build()
        engine._contact_roots("p1", "Person")
        misses = engine.stats.contacts_cache_misses
        # p7/p8 are unrelated to p1's contacts (p2, p3).
        assert engine.uf.union("p7", "p8") is not None
        engine._contact_roots("p1", "Person")
        assert engine.stats.contacts_cache_misses == misses
        assert engine.stats.contacts_cache_hits >= 1

    def test_full_run_matches_versioned_cache_semantics(self, example1_store):
        # The paper's Example 1 end state must be unchanged by the
        # invalidation rework: all Stonebraker/Wong/Epstein mentions
        # reconcile, and the two venue mentions do.
        engine = Reconciler(example1_store, PimDomainModel())
        result = engine.run()
        assert engine.uf.connected("p2", "p9")  # mike == Stonebraker
        assert engine.uf.connected("p3", "p7")  # both Eugene Wongs
        assert engine.uf.connected("c1", "c2")
        assert result.completed
