"""Tests for venue, title, pages and year similarity."""

import pytest

from repro.similarity.titles import pages_similarity, title_similarity, year_similarity
from repro.similarity.venues import expand_venue_tokens, venue_name_similarity

MERGE_LINE = 0.85 / 0.9  # venue profile: 0.9 * name >= 0.85


class TestVenueNames:
    def test_identical(self):
        assert venue_name_similarity("SIGMOD", "sigmod") == 1.0

    def test_shared_acronym_token(self):
        assert venue_name_similarity("ACM SIGMOD", "Proceedings of SIGMOD") >= MERGE_LINE

    def test_known_acronym_expansion(self):
        score = venue_name_similarity(
            "ACM Conference on Management of Data", "ACM SIGMOD"
        )
        assert score >= 0.75

    def test_derivable_acronym(self):
        score = venue_name_similarity("Very Large Data Bases", "VLDB")
        assert score >= 0.85

    def test_different_known_acronyms_capped(self):
        assert venue_name_similarity("SIGMOD", "VLDB") <= 0.2
        assert venue_name_similarity("ICDE", "ICML") <= 0.2

    def test_topical_containment_not_decisive(self):
        # The "Machine Learning" journal is contained in ICML's name.
        score = venue_name_similarity(
            "Machine Learning", "International Conference on Machine Learning"
        )
        assert score < MERGE_LINE

    def test_superset_workshop_not_decisive(self):
        score = venue_name_similarity(
            "International Conference on Knowledge Discovery and Data Mining",
            "Workshop on Research Issues in Data Mining and Knowledge Discovery",
        )
        assert score < MERGE_LINE

    def test_transactions_distinguish_journals(self):
        score = venue_name_similarity(
            "ACM Transactions on Database Systems",
            "Symposium on Principles of Database Systems",
        )
        assert score < MERGE_LINE

    def test_empty(self):
        assert venue_name_similarity("", "SIGMOD") == 0.0

    def test_symmetry(self):
        pairs = [
            ("ACM SIGMOD", "Proceedings of SIGMOD"),
            ("VLDB", "Very Large Data Bases"),
            ("TODS", "PODS"),
        ]
        for left, right in pairs:
            assert venue_name_similarity(left, right) == pytest.approx(
                venue_name_similarity(right, left)
            )


class TestExpandVenueTokens:
    def test_expansion(self):
        tokens = expand_venue_tokens("ACM SIGMOD")
        assert "management" in tokens and "data" in tokens

    def test_digits_dropped(self):
        assert "1997" not in expand_venue_tokens("PAMI 1997")

    def test_boilerplate_dropped(self):
        tokens = expand_venue_tokens("Proceedings of the International Conference on Data Engineering")
        assert "proceedings" not in tokens
        assert "international" not in tokens
        assert "data" in tokens

    def test_transactions_kept(self):
        assert "transactions" in expand_venue_tokens("ACM Transactions on Database Systems")


class TestTitles:
    def test_equal(self):
        assert title_similarity("Query Processing", "query processing") == 1.0

    def test_word_variant(self):
        score = title_similarity(
            "Distributed query processing in a relational data base system",
            "Distributed query processing in a relational database system",
        )
        assert score > 0.9

    def test_unrelated(self):
        assert title_similarity("Deep learning", "Buffer pool management") < 0.4

    def test_empty(self):
        assert title_similarity("", "x") == 0.0


class TestPages:
    def test_equal_ranges(self):
        assert pages_similarity("169-180", "169--180") == 1.0
        assert pages_similarity("169-180", "pp. 169-180") == 1.0

    def test_start_page_only(self):
        assert pages_similarity("169", "169-180") == pytest.approx(0.9)

    def test_overlap(self):
        assert pages_similarity("169-180", "170-181") == pytest.approx(0.6)

    def test_disjoint(self):
        assert pages_similarity("1-10", "100-110") == 0.0

    def test_unparsable(self):
        assert pages_similarity("n/a", "n/a") == 1.0
        assert pages_similarity("n/a", "169-180") == 0.0


class TestYears:
    def test_equal(self):
        assert year_similarity("1998", "1998") == 1.0

    def test_adjacent(self):
        assert year_similarity("1998", "1999") == 0.5

    def test_two_digit(self):
        assert year_similarity("98", "1998") == 1.0
        assert year_similarity("04", "2004") == 1.0

    def test_distant(self):
        assert year_similarity("1990", "2000") == 0.0

    def test_missing(self):
        assert year_similarity("", "1998") == 0.0
