"""Live monitoring: HUD rendering, event-log folding, `repro watch`."""

import io
import json
from types import SimpleNamespace

from repro.cli import main
from repro.obs import (
    LiveHud,
    follow_events,
    read_events,
    render_hud,
    render_watch,
    watch_snapshot,
)


def _events_for_finished_run():
    return [
        {"event": "run_start", "dataset": "PIM B", "algorithm": "depgraph",
         "references": 328, "workers": 2, "iterate_workers": 2},
        {"event": "build_start"},
        {"event": "build_end", "queued": 259},
        {"event": "iterate_start", "queued": 259},
        {"event": "iterate_progress", "step": 100, "queued": 120,
         "merges": 40, "recomputations": 100},
        {"event": "checkpoint_saved"},
        {"event": "lane_died", "pid": 7, "reason": "task timeout"},
        {"event": "iterate_end", "steps": 153, "merges": 79,
         "stop_reason": "converged"},
        {"event": "run_end", "completed": True, "stop_reason": "converged",
         "merges": 79, "recomputations": 153},
    ]


class TestRenderers:
    def test_hud_line_is_byte_stable(self):
        line = render_hud(
            phase="iterate", step=1200, queued=3400, merges=56,
            hit_rate=0.761, eta=95.0,
        )
        assert line == (
            "[iterate] · step 1,200 · queued 3,400 · merges 56 "
            "· cache 76.1% · eta 1m35s"
        )
        assert line == render_hud(
            phase="iterate", step=1200, queued=3400, merges=56,
            hit_rate=0.761, eta=95.0,
        )

    def test_hud_omits_unknown_parts(self):
        assert render_hud(phase="build") == "[build]"
        # iterate always shows an ETA slot, "--" when unprojectable.
        assert render_hud(phase="iterate") == "[iterate] · eta --"
        assert render_hud(phase="iterate", eta=12) == "[iterate] · eta 12s"

    def test_watch_snapshot_folds_a_full_run(self):
        snap = watch_snapshot(_events_for_finished_run())
        assert snap["phase"] == "done"
        assert snap["completed"] is True
        assert snap["step"] == 153
        assert snap["merges"] == 79
        assert snap["checkpoints"] == 1
        assert snap["lane_deaths"] == 1
        assert snap["events"] == 9

    def test_watch_snapshot_on_a_prefix(self):
        snap = watch_snapshot(_events_for_finished_run()[:5])
        assert snap["phase"] == "iterate"
        assert snap["step"] == 100
        assert snap["queued"] == 120
        assert snap["completed"] is None

    def test_render_watch_is_byte_stable(self):
        snap = watch_snapshot(_events_for_finished_run())
        text = render_watch(snap)
        assert text == (
            "run: PIM B (depgraph) · 328 references\n"
            "phase: done\n"
            "progress: step 153 · queued 120 · merges 79 · recomputations 153\n"
            "workers: 2 build / 2 iterate\n"
            "checkpoints: 1 · degradations: 0 · lane deaths: 1 "
            "· pairs poisoned: 0\n"
            "result: completed (converged)"
        )
        assert text == render_watch(watch_snapshot(_events_for_finished_run()))

    def test_render_watch_handles_an_empty_stream(self):
        text = render_watch(watch_snapshot([]))
        assert text.startswith("run: ? (?)")
        assert "phase: starting" in text


class TestLiveHud:
    def _engine(self, queued, **stats):
        defaults = dict(
            values_cache_hits=0, values_cache_misses=0,
            contacts_cache_hits=0, contacts_cache_misses=0, merges=0,
        )
        defaults.update(stats)
        return SimpleNamespace(
            queue=list(range(queued)), stats=SimpleNamespace(**defaults)
        )

    def test_step_hook_draws_in_place(self):
        stream = io.StringIO()
        clock = iter(float(i) for i in range(100))
        hud = LiveHud(stream, interval=0.0, clock=lambda: next(clock))
        hud.phase("build")
        hud.step_hook(
            self._engine(50, values_cache_hits=3, values_cache_misses=1,
                         merges=2),
            step=0,
        )
        hud.close()
        output = stream.getvalue()
        assert "\r[build]\x1b[K" in output
        assert "step 0" in output and "queued 50" in output
        assert "merges 2" in output and "cache 75.0%" in output
        assert output.endswith("\n")

    def test_eta_projects_from_queue_drain(self):
        stream = io.StringIO()
        times = iter([0.0, 1.0, 2.0, 3.0])
        hud = LiveHud(stream, interval=0.0, clock=lambda: next(times))
        for queued in (100, 90, 80):
            hud.step_hook(self._engine(queued), step=queued)
        # 10 keys/second drain, 80 queued -> 8s.
        assert "eta 8s" in stream.getvalue()

    def test_growing_queue_yields_no_eta(self):
        stream = io.StringIO()
        times = iter([0.0, 1.0, 2.0])
        hud = LiveHud(stream, interval=0.0, clock=lambda: next(times))
        for queued in (100, 150):
            hud.step_hook(self._engine(queued), step=0)
        assert "eta --" in stream.getvalue()

    def test_throttle_skips_fast_redraws(self):
        stream = io.StringIO()
        times = iter([0.0, 0.01, 0.02, 5.0])
        hud = LiveHud(stream, interval=1.0, clock=lambda: next(times))
        for step in range(4):
            hud.step_hook(self._engine(10), step=step)
        output = stream.getvalue()
        assert "step 0" in output
        assert "step 1" not in output and "step 2" not in output
        assert "step 3" in output

    def test_close_without_draw_writes_nothing(self):
        stream = io.StringIO()
        LiveHud(stream).close()
        assert stream.getvalue() == ""


class TestFollowEvents:
    def test_reads_skip_torn_trailing_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = [json.dumps(e) for e in _events_for_finished_run()]
        path.write_text("\n".join(lines) + '\n{"event": "tru')
        assert len(read_events(path)) == 9

    def test_follow_stops_on_run_end(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            "".join(json.dumps(e) + "\n" for e in _events_for_finished_run())
        )
        stream = io.StringIO()
        snap = follow_events(
            path, stream=stream, interval=0.0,
            clock=lambda: 0.0, sleep=lambda _s: None,
        )
        assert snap["phase"] == "done"
        assert stream.getvalue().endswith("\n")

    def test_follow_gives_up_on_a_silent_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps({"event": "build_start"}) + "\n")
        clock_values = iter([0.0, 0.0, 10.0, 20.0])
        snap = follow_events(
            path, stream=io.StringIO(), interval=0.0,
            clock=lambda: next(clock_values), sleep=lambda _s: None,
            max_idle=5.0,
        )
        assert snap["phase"] == "build"


class TestWatchCli:
    def test_once_snapshot(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "events.jsonl").write_text(
            "".join(json.dumps(e) + "\n" for e in _events_for_finished_run())
        )
        assert main(["watch", str(run_dir), "--once"]) == 0
        out = capsys.readouterr().out
        assert "run: PIM B (depgraph)" in out
        assert "result: completed (converged)" in out

    def test_once_resolves_events_through_manifest(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "elsewhere.jsonl").write_text(
            json.dumps({"event": "run_start", "dataset": "X",
                        "algorithm": "depgraph", "references": 1}) + "\n"
        )
        (run_dir / "run.json").write_text(
            json.dumps({"artifacts": {"events": "elsewhere.jsonl"}})
        )
        assert main(["watch", str(run_dir), "--once"]) == 0
        assert "run: X (depgraph)" in capsys.readouterr().out

    def test_once_with_no_events_errors(self, tmp_path, capsys):
        run_dir = tmp_path / "empty"
        run_dir.mkdir()
        assert main(["watch", str(run_dir), "--once"]) == 2
        assert "no events found" in capsys.readouterr().err
