"""End-to-end integration tests on generated datasets.

These assert the *qualitative shape* of the paper's results at test
scale: DepGraph dominates InDepDec, context evidence drives the gains,
constraints protect precision, and the experiment drivers run.
"""

import pytest

from repro.baselines import indepdec_config
from repro.core import EngineConfig, Reconciler
from repro.domains import CoraDomainModel, PimDomainModel
from repro.evaluation import person_subset
from repro.evaluation.metrics import (
    entities_with_false_positives,
    pairwise_scores,
)


@pytest.fixture(scope="module")
def pim_runs(tiny_pim_a):
    domain = PimDomainModel()
    runs = {}
    for label, config in (
        ("indepdec", indepdec_config(domain)),
        ("depgraph", EngineConfig()),
        ("no_constraints", EngineConfig(constraints=False)),
    ):
        reconciler = Reconciler(tiny_pim_a.store, PimDomainModel(), config)
        runs[label] = (reconciler, reconciler.run())
    return runs


class TestPimShape:
    def test_depgraph_dominates_indepdec(self, tiny_pim_a, pim_runs):
        gold = tiny_pim_a.gold.entity_of
        for class_name in ("Person", "Article", "Venue"):
            dep = pairwise_scores(pim_runs["depgraph"][1].clusters(class_name), gold)
            ind = pairwise_scores(pim_runs["indepdec"][1].clusters(class_name), gold)
            assert dep.f_measure >= ind.f_measure - 0.02, class_name

    def test_person_recall_gain(self, tiny_pim_a, pim_runs):
        gold = tiny_pim_a.gold.entity_of
        dep = pairwise_scores(pim_runs["depgraph"][1].clusters("Person"), gold)
        ind = pairwise_scores(pim_runs["indepdec"][1].clusters("Person"), gold)
        assert dep.recall > ind.recall
        assert dep.precision > 0.9

    def test_venue_recall_gain_via_propagation(self, tiny_pim_a, pim_runs):
        gold = tiny_pim_a.gold.entity_of
        dep = pairwise_scores(pim_runs["depgraph"][1].clusters("Venue"), gold)
        ind = pairwise_scores(pim_runs["indepdec"][1].clusters("Venue"), gold)
        assert dep.recall > ind.recall + 0.05

    def test_constraints_protect_precision(self, tiny_pim_a, pim_runs):
        gold = tiny_pim_a.gold.entity_of
        constrained = pim_runs["depgraph"][1]
        unconstrained = pim_runs["no_constraints"][1]
        fp_with = entities_with_false_positives(constrained.clusters("Person"), gold)
        fp_without = entities_with_false_positives(
            unconstrained.clusters("Person"), gold
        )
        assert fp_with <= fp_without

    def test_partition_counts_approach_truth(self, tiny_pim_a, pim_runs):
        entities = tiny_pim_a.gold.entity_count("Person")
        dep = pim_runs["depgraph"][1].partition_count("Person")
        ind = pim_runs["indepdec"][1].partition_count("Person")
        assert entities <= dep <= ind


class TestSubsets:
    def test_subset_extraction(self, tiny_pim_a):
        email_subset = person_subset(tiny_pim_a, "email")
        bib_subset = person_subset(tiny_pim_a, "bibtex")
        email_subset.store.validate()
        bib_subset.store.validate()
        assert all(
            ref.class_name == "Person" for ref in email_subset.store
        )
        bib_classes = {ref.class_name for ref in bib_subset.store}
        assert bib_classes == {"Person", "Article", "Venue"}
        total_persons = tiny_pim_a.gold.reference_count("Person")
        assert (
            email_subset.gold.reference_count("Person")
            + bib_subset.gold.reference_count("Person")
            == total_persons
        )

    def test_particle_gain_is_large(self, tiny_pim_a):
        """Name-only references need associations (paper: +30.7%)."""
        domain = PimDomainModel()
        subset = person_subset(tiny_pim_a, "bibtex")
        gold = subset.gold.entity_of
        ind = Reconciler(subset.store, PimDomainModel(), indepdec_config(domain)).run()
        dep = Reconciler(subset.store, PimDomainModel(), EngineConfig()).run()
        ind_scores = pairwise_scores(ind.clusters("Person"), gold)
        dep_scores = pairwise_scores(dep.clusters("Person"), gold)
        assert dep_scores.recall > ind_scores.recall + 0.1
        assert dep_scores.precision > 0.9


class TestCoraShape:
    def test_cora_table7_shape(self, tiny_cora):
        domain = CoraDomainModel()
        gold = tiny_cora.gold.entity_of
        ind = Reconciler(
            tiny_cora.store, CoraDomainModel(), indepdec_config(domain)
        ).run()
        dep = Reconciler(tiny_cora.store, CoraDomainModel(), EngineConfig()).run()
        for class_name in ("Person", "Article", "Venue"):
            ind_scores = pairwise_scores(ind.clusters(class_name), gold)
            dep_scores = pairwise_scores(dep.clusters(class_name), gold)
            assert dep_scores.f_measure >= ind_scores.f_measure - 0.02, class_name
        # The venue two-fold effect.
        ind_venue = pairwise_scores(ind.clusters("Venue"), gold)
        dep_venue = pairwise_scores(dep.clusters("Venue"), gold)
        assert dep_venue.recall > ind_venue.recall + 0.1

    def test_cora_person_precision(self, tiny_cora):
        gold = tiny_cora.gold.entity_of
        dep = Reconciler(tiny_cora.store, CoraDomainModel(), EngineConfig()).run()
        scores = pairwise_scores(dep.clusters("Person"), gold)
        assert scores.precision > 0.9


class TestDatasetDSignature:
    def test_owner_split_costs_recall_not_precision(self, tiny_pim_d):
        gold = tiny_pim_d.gold.entity_of
        dep = Reconciler(tiny_pim_d.store, PimDomainModel(), EngineConfig()).run()
        scores = pairwise_scores(dep.clusters("Person"), gold)
        assert scores.precision > 0.85
        # The owner is split by constraint 3: her references land in
        # more than one partition.
        owner = tiny_pim_d.world.owner_id
        owner_clusters = [
            cluster
            for cluster in dep.clusters("Person")
            if any(gold[ref] == owner for ref in cluster)
        ]
        assert len(owner_clusters) >= 2
        # Without constraints the owner reunites.
        free = Reconciler(
            tiny_pim_d.store, PimDomainModel(), EngineConfig(constraints=False)
        ).run()
        free_owner_clusters = [
            cluster
            for cluster in free.clusters("Person")
            if any(gold[ref] == owner for ref in cluster)
        ]
        assert len(free_owner_clusters) <= len(owner_clusters)
