"""Unit and property tests for the generic string metrics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.strings import (
    containment_similarity,
    damerau_levenshtein_distance,
    damerau_levenshtein_similarity,
    dice_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    longest_common_substring_similarity,
    monge_elkan_similarity,
    ngram_similarity,
    prefix_similarity,
)

WORDS = st.text(alphabet="abcdefghij ", min_size=0, max_size=12)

ALL_METRICS = [
    levenshtein_similarity,
    damerau_levenshtein_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    ngram_similarity,
    longest_common_substring_similarity,
    monge_elkan_similarity,
    prefix_similarity,
]


class TestLevenshtein:
    def test_classic_distances(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("flaw", "lawn") == 2
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3
        assert levenshtein_distance("abc", "abc") == 0

    def test_transposition_counts_two_in_plain_levenshtein(self):
        assert levenshtein_distance("ab", "ba") == 2
        assert damerau_levenshtein_distance("ab", "ba") == 1

    def test_damerau_examples(self):
        assert damerau_levenshtein_distance("ca", "abc") == 3
        assert damerau_levenshtein_distance("stonebraker", "stonebarker") == 1
        assert damerau_levenshtein_distance("michael", "micheal") == 1

    @given(WORDS, WORDS)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)
        assert damerau_levenshtein_distance(a, b) == damerau_levenshtein_distance(b, a)

    @given(WORDS, WORDS, WORDS)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(
            a, b
        ) + levenshtein_distance(b, c)

    @given(WORDS, WORDS)
    def test_distance_bounds(self, a, b):
        distance = levenshtein_distance(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))

    @given(WORDS)
    def test_identity(self, a):
        assert levenshtein_distance(a, a) == 0
        assert damerau_levenshtein_distance(a, a) == 0


class TestJaro:
    def test_known_values(self):
        assert math.isclose(jaro_similarity("martha", "marhta"), 0.9444, abs_tol=1e-3)
        assert math.isclose(jaro_similarity("dixon", "dicksonx"), 0.7667, abs_tol=1e-3)
        assert math.isclose(
            jaro_winkler_similarity("martha", "marhta"), 0.9611, abs_tol=1e-3
        )

    def test_disjoint_strings(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_winkler_boosts_prefix(self):
        plain = jaro_similarity("prefixes", "prefixed")
        boosted = jaro_winkler_similarity("prefixes", "prefixed")
        assert boosted >= plain

    @given(WORDS, WORDS)
    def test_symmetry_and_range(self, a, b):
        score = jaro_similarity(a, b)
        assert 0.0 <= score <= 1.0
        assert math.isclose(score, jaro_similarity(b, a), abs_tol=1e-12)


class TestSetMetrics:
    def test_jaccard(self):
        assert jaccard_similarity(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)
        assert jaccard_similarity([], []) == 1.0
        assert jaccard_similarity(["a"], []) == 0.0

    def test_dice(self):
        assert dice_similarity(["a", "b"], ["b", "c"]) == pytest.approx(0.5)

    def test_containment(self):
        assert containment_similarity(["a", "b"], ["a", "b", "c", "d"]) == 1.0
        assert containment_similarity(["a", "x"], ["a", "b", "c"]) == 0.5

    @given(
        st.lists(st.sampled_from("abcdef"), max_size=6),
        st.lists(st.sampled_from("abcdef"), max_size=6),
    )
    def test_dice_dominates_jaccard(self, a, b):
        assert dice_similarity(a, b) >= jaccard_similarity(a, b) - 1e-12


class TestNgram:
    def test_bigram_overlap(self):
        assert ngram_similarity("night", "nacht") == pytest.approx(1 / 7)
        assert ngram_similarity("abc", "abc") == 1.0

    def test_short_strings(self):
        assert ngram_similarity("a", "a") == 1.0
        assert ngram_similarity("a", "b") == 0.0


class TestLcs:
    def test_substring(self):
        assert longest_common_substring_similarity("sigmod", "acm sigmod") == 1.0
        assert longest_common_substring_similarity("abcdef", "xxcdxx") == pytest.approx(
            2 / 6
        )


class TestMongeElkan:
    def test_token_alignment(self):
        score = monge_elkan_similarity("michael stonebraker", "stonebraker michael")
        assert score == pytest.approx(1.0)

    def test_partial(self):
        score = monge_elkan_similarity("data base systems", "database system")
        assert score > 0.8


@pytest.mark.parametrize("metric", ALL_METRICS)
class TestCommonProperties:
    @given(a=WORDS, b=WORDS)
    @settings(max_examples=40)
    def test_range_and_symmetry(self, metric, a, b):
        score = metric(a, b)
        assert 0.0 <= score <= 1.0
        assert math.isclose(score, metric(b, a), abs_tol=1e-9)

    @given(a=WORDS)
    @settings(max_examples=40)
    def test_reflexive(self, metric, a):
        assert metric(a, a) == pytest.approx(1.0)
