"""Tests for the one-shot reproduction report."""

import pytest

from repro.evaluation.report import build_report, shape_checklist, write_report


class TestReport:
    @pytest.mark.slow
    def test_build_report_structure(self):
        report = build_report(scale=0.2)
        assert "# Reproduction report" in report
        assert "Shape checklist" in report
        for table in ("Table 1", "Table 5", "Table 7", "Figure 6"):
            assert f"## {table}" in report

    @pytest.mark.slow
    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "report.md", scale=0.2)
        assert path.exists()
        assert "Table 4" in path.read_text()

    def test_checklist_is_boolean(self):
        report_checks = shape_checklist(
            table2_rows=[
                {"class": c, "InDepDec_f": 0.5, "DepGraph_f": 0.9,
                 "InDepDec_recall": 0.5, "DepGraph_recall": 0.9,
                 "InDepDec_precision": 0.9, "DepGraph_precision": 0.9}
                for c in ("Person", "Article", "Venue")
            ],
            table3_rows=[
                {"dataset": d, "InDepDec_recall": 0.5, "DepGraph_recall": 0.9}
                for d in ("Full", "PArticle", "PEmail")
            ],
            table4_rows=[
                {"dataset": d, "InDepDec_partitions": 10, "DepGraph_partitions": 8,
                 "DepGraph_recall": 0.9}
                for d in "ABCD"
            ],
            grid={"cells": {(m, e): 10 for m in
                            ("Traditional", "Propagation", "Merge", "Full")
                            for e in ("Attr-wise", "Name&Email", "Article", "Contact")}},
            table6_rows=[
                {"method": "DepGraph", "precision": 0.99,
                 "entities_with_false_positives": 1},
                {"method": "Non-Constraint", "precision": 0.9,
                 "entities_with_false_positives": 5},
            ],
            table7_rows=[
                {"class": c, "InDepDec_f": 0.5, "DepGraph_f": 0.9,
                 "InDepDec_recall": 0.3, "DepGraph_recall": 0.9,
                 "InDepDec_precision": 0.99, "DepGraph_precision": 0.8}
                for c in ("Person", "Article", "Venue")
            ],
        )
        assert len(report_checks) == 10
        for claim, ok in report_checks:
            assert isinstance(claim, str)
            assert isinstance(ok, bool)
