"""Property and acceptance tests for the fault-tolerant runtime.

Two families:

* **Crash/resume equivalence** — kill a run with an injected fault at
  an arbitrary iterate step, resume from the latest checkpoint, and
  demand the exact partition (and work counters) of the uninterrupted
  run. Checked on hypothesis micro-worlds and on the paper's PIM A-D
  and Cora-like benchmarks.
* **Quarantine ingestion** — corrupt ~5% of a dataset's reference
  lines; strict mode must fail fast with a :class:`DataError` naming
  the file and line, lenient mode must complete with every bad record
  quarantined with a reason, and the surviving corpus must reconcile.
"""

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Reconciler, ReferenceStore
from repro.datasets import generate_cora_dataset, generate_pim_dataset
from repro.datasets.io import load_dataset, save_dataset
from repro.domains import CoraDomainModel, PimDomainModel
from repro.runtime import (
    Checkpointer,
    CrashAtStep,
    DataError,
    InjectedFault,
    inject_malformed_lines,
)

from .test_engine_properties import micro_worlds


def _crash_and_resume(store_factory, domain, crash_step, *, every=1, config=None):
    """Run to convergence, then re-run with a crash at *crash_step* and
    resume from the last checkpoint; returns (expected, resumed engine,
    resumed result). *config* (e.g. ``workers=2``) applies to all three
    runs."""
    uninterrupted = Reconciler(store_factory(), domain, config)
    expected = uninterrupted.run()
    engine = Reconciler(store_factory(), domain, config)
    with tempfile.TemporaryDirectory() as tmp:
        checkpointer = Checkpointer(tmp, every=every)
        crash = CrashAtStep(crash_step)
        try:
            engine.run(checkpointer=checkpointer, step_hook=crash)
        except InjectedFault:
            pass
        if not crash.fired:
            # The run converged before the crash step; the property is
            # trivially satisfied.
            return expected, uninterrupted, expected
        resumed = Reconciler.resume(
            checkpointer.path, store=store_factory(), domain=domain, config=config
        )
        result = resumed.run()
    assert resumed.stats.merges == uninterrupted.stats.merges
    assert resumed.stats.recomputations == uninterrupted.stats.recomputations
    return expected, resumed, result


class TestCrashResumeProperty:
    @given(micro_worlds(), st.integers(0, 40))
    @settings(max_examples=20, deadline=None)
    def test_resume_matches_uninterrupted(self, world, crash_step):
        references, _ = world
        domain = PimDomainModel()
        expected, _, result = _crash_and_resume(
            lambda: ReferenceStore(domain.schema, references), domain, crash_step
        )
        assert result.partitions == expected.partitions


class TestCrashResumeAcceptance:
    """Acceptance criterion: identical partitions on PIM A-D + Cora."""

    @pytest.mark.parametrize("name", ["A", "B", "C", "D"])
    def test_pim_datasets(self, name):
        dataset = generate_pim_dataset(name, scale=0.12, seed=11)
        domain = PimDomainModel()
        refs = list(dataset.store)
        expected, _, result = _crash_and_resume(
            lambda: ReferenceStore(domain.schema, refs),
            domain,
            crash_step=25,
            every=10,
        )
        assert result.partitions == expected.partitions

    def test_cora_like(self):
        from repro.datasets.cora import CoraConfig

        dataset = generate_cora_dataset(
            CoraConfig(n_papers=10, n_citations=80, n_authors=25, n_venues=5, seed=5)
        )
        domain = CoraDomainModel()
        refs = list(dataset.store)
        expected, _, result = _crash_and_resume(
            lambda: ReferenceStore(domain.schema, refs),
            domain,
            crash_step=25,
            every=10,
        )
        assert result.partitions == expected.partitions


class TestParallelCrashResume:
    """``--workers N`` and ``--resume`` together: a parallel run that
    crashes mid-iterate and resumes must stay byte-identical to an
    uninterrupted *serial* run — checkpoints carry no worker state, and
    the build's parallel scoring is itself deterministic."""

    @staticmethod
    def _parallel_config():
        from dataclasses import replace

        from repro.core import EngineConfig

        return replace(EngineConfig(), workers=2)

    @pytest.mark.parametrize("name", ["A", "B", "C", "D"])
    def test_pim_datasets(self, name):
        dataset = generate_pim_dataset(name, scale=0.12, seed=11)
        domain = PimDomainModel()
        refs = list(dataset.store)
        serial = Reconciler(ReferenceStore(domain.schema, refs), domain).run()
        expected, _, result = _crash_and_resume(
            lambda: ReferenceStore(domain.schema, refs),
            domain,
            crash_step=25,
            every=10,
            config=self._parallel_config(),
        )
        assert result.partitions == serial.partitions
        assert expected.partitions == serial.partitions

    def test_cora_like(self):
        from repro.datasets.cora import CoraConfig

        dataset = generate_cora_dataset(
            CoraConfig(n_papers=10, n_citations=80, n_authors=25, n_venues=5, seed=5)
        )
        domain = CoraDomainModel()
        refs = list(dataset.store)
        serial = Reconciler(ReferenceStore(domain.schema, refs), domain).run()
        expected, _, result = _crash_and_resume(
            lambda: ReferenceStore(domain.schema, refs),
            domain,
            crash_step=25,
            every=10,
            config=self._parallel_config(),
        )
        assert result.partitions == serial.partitions
        assert expected.partitions == serial.partitions


class TestSpeculativeCrashResume:
    """``--iterate-workers`` crossed with ``--workers`` and
    ``--resume``: a run that speculates the iterate loop, crashes
    mid-iterate and resumes must stay byte-identical to an
    uninterrupted serial run. Checkpoints carry no speculation state —
    the executor is rebuilt fresh after resume, and speculation is a
    validated cache, so the continued pop/commit sequence is untouched."""

    @staticmethod
    def _speculative_config():
        from dataclasses import replace

        from repro.core import EngineConfig

        return replace(
            EngineConfig(), workers=2, iterate_workers=2, iterate_batch=16
        )

    @pytest.mark.parametrize("name", ["A", "B", "C", "D"])
    def test_pim_datasets(self, name):
        dataset = generate_pim_dataset(name, scale=0.12, seed=11)
        domain = PimDomainModel()
        refs = list(dataset.store)
        serial = Reconciler(ReferenceStore(domain.schema, refs), domain).run()
        expected, _, result = _crash_and_resume(
            lambda: ReferenceStore(domain.schema, refs),
            domain,
            crash_step=25,
            every=10,
            config=self._speculative_config(),
        )
        assert result.partitions == serial.partitions
        assert expected.partitions == serial.partitions

    def test_cora_like(self):
        from repro.datasets.cora import CoraConfig

        dataset = generate_cora_dataset(
            CoraConfig(n_papers=10, n_citations=80, n_authors=25, n_venues=5, seed=5)
        )
        domain = CoraDomainModel()
        refs = list(dataset.store)
        serial = Reconciler(ReferenceStore(domain.schema, refs), domain).run()
        expected, _, result = _crash_and_resume(
            lambda: ReferenceStore(domain.schema, refs),
            domain,
            crash_step=25,
            every=10,
            config=self._speculative_config(),
        )
        assert result.partitions == serial.partitions
        assert expected.partitions == serial.partitions


class TestQuarantineIngestion:
    """Acceptance criterion: a 5%-malformed corpus loads leniently with
    every bad record quarantined; strict mode fails fast naming the
    file and line."""

    def _corrupted_dataset(self, tmp: Path):
        dataset = generate_pim_dataset("A", scale=0.15, seed=7)
        directory = save_dataset(dataset, tmp / "ds")
        bad_lines = inject_malformed_lines(
            directory / "references.jsonl", rate=0.05, seed=7
        )
        assert bad_lines
        return directory, bad_lines

    def test_strict_mode_fails_fast_with_location(self):
        with tempfile.TemporaryDirectory() as tmp:
            directory, bad_lines = self._corrupted_dataset(Path(tmp))
            with pytest.raises(DataError) as excinfo:
                load_dataset(directory)
            error = excinfo.value
            assert error.path == str(directory / "references.jsonl")
            assert error.line == min(bad_lines)
            assert "references.jsonl" in str(error)
            assert f":{min(bad_lines)}:" in str(error)

    def test_lenient_mode_quarantines_every_bad_line(self):
        with tempfile.TemporaryDirectory() as tmp:
            directory, bad_lines = self._corrupted_dataset(Path(tmp))
            dataset = load_dataset(directory, lenient=True)
            ref_file = str(directory / "references.jsonl")
            quarantined_lines = {
                record.line
                for record in dataset.quarantined
                if record.path == ref_file
            }
            # Every corrupted line was set aside, each with a reason.
            assert set(bad_lines) <= quarantined_lines
            assert all(record.reason for record in dataset.quarantined)
            # The quarantine file mirrors Dataset.quarantined.
            quarantine_path = directory / "quarantine.jsonl"
            assert quarantine_path.exists()
            rows = [
                json.loads(line)
                for line in quarantine_path.read_text().splitlines()
            ]
            assert len(rows) == len(dataset.quarantined)
            assert all({"path", "line", "reason", "raw"} <= set(row) for row in rows)

    def test_lenient_survivors_reconcile(self):
        with tempfile.TemporaryDirectory() as tmp:
            directory, _ = self._corrupted_dataset(Path(tmp))
            dataset = load_dataset(directory, lenient=True)
            assert len(dataset.store) > 0
            result = Reconciler(dataset.store, PimDomainModel()).run()
            assert result.completed
            # The partial corpus still partitions every surviving ref.
            seen = [
                ref
                for class_name in dataset.store.schema.class_names
                for cluster in result.clusters(class_name)
                for ref in cluster
            ]
            assert sorted(seen) == sorted(r.ref_id for r in dataset.store)

    def test_clean_dataset_round_trips_without_quarantine(self):
        with tempfile.TemporaryDirectory() as tmp:
            dataset = generate_pim_dataset("A", scale=0.1, seed=3)
            directory = save_dataset(dataset, Path(tmp) / "ds")
            strict = load_dataset(directory)
            lenient = load_dataset(directory, lenient=True)
            assert not strict.quarantined
            assert not lenient.quarantined
            assert not (directory / "quarantine.jsonl").exists()
            assert len(strict.store) == len(dataset.store)
