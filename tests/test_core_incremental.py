"""Tests for incremental reconciliation (§7 future work)."""

import pytest

from repro.core import (
    EngineConfig,
    IncrementalReconciler,
    Reconciler,
    Reference,
    ReferenceStore,
)
from repro.domains import PimDomainModel

from .conftest import example1_references


def split_example1():
    """Base = the bibliography world; batch = the email references."""
    refs = example1_references()
    batch_ids = {"p7", "p8", "p9"}
    base = [ref for ref in refs if ref.ref_id not in batch_ids]
    batch = [ref for ref in refs if ref.ref_id in batch_ids]
    return base, batch


class TestIncremental:
    def test_matches_full_rerun_on_example1(self):
        base, batch = split_example1()
        domain = PimDomainModel()
        incremental = IncrementalReconciler(
            ReferenceStore(domain.schema, base), domain, EngineConfig()
        )
        incremental.initial()
        result = incremental.add(batch)
        assert result.clusters("Person") == [
            ["p1", "p4"],
            ["p2", "p5", "p8", "p9"],
            ["p3", "p6", "p7"],
        ]

    def test_initial_required_before_add(self):
        base, batch = split_example1()
        domain = PimDomainModel()
        incremental = IncrementalReconciler(
            ReferenceStore(domain.schema, base), domain, EngineConfig()
        )
        with pytest.raises(RuntimeError):
            incremental.add(batch)

    def test_initial_only_once(self):
        base, _ = split_example1()
        domain = PimDomainModel()
        incremental = IncrementalReconciler(
            ReferenceStore(domain.schema, base), domain, EngineConfig()
        )
        incremental.initial()
        with pytest.raises(RuntimeError):
            incremental.initial()

    def test_empty_batch_is_noop(self):
        base, _ = split_example1()
        domain = PimDomainModel()
        incremental = IncrementalReconciler(
            ReferenceStore(domain.schema, base), domain, EngineConfig()
        )
        before = incremental.initial().partitions
        after = incremental.add([]).partitions
        assert before == after

    def test_key_agreement_merges_new_reference(self):
        base, _ = split_example1()
        domain = PimDomainModel()
        incremental = IncrementalReconciler(
            ReferenceStore(domain.schema, base), domain, EngineConfig()
        )
        incremental.initial()
        first = incremental.add(
            [Reference("x1", "Person", {"name": ("Eugene Wong",), "email": ("ew@mit.edu",)})]
        )
        assert first.same_entity("x1", "p3")
        second = incremental.add(
            [Reference("x2", "Person", {"email": ("ew@mit.edu",)})]
        )
        assert second.same_entity("x2", "x1")
        assert second.same_entity("x2", "p3")

    def test_new_constraints_installed(self):
        base, _ = split_example1()
        domain = PimDomainModel()
        incremental = IncrementalReconciler(
            ReferenceStore(domain.schema, base), domain, EngineConfig()
        )
        incremental.initial()
        # A new article whose authors are two existing clusters: they
        # must never merge afterwards (constraint 1).
        result = incremental.add(
            [
                Reference("x1", "Person", {"name": ("Robert Epstein",)}),
                Reference("x2", "Person", {"name": ("Eugene Wong",)}),
                Reference(
                    "ax",
                    "Article",
                    {
                        "title": ("A new system",),
                        "authoredBy": ("x1", "x2"),
                    },
                ),
            ]
        )
        assert result.same_entity("x1", "p1")
        assert result.same_entity("x2", "p3")
        assert not result.same_entity("x1", "x2")

    def test_less_work_than_full_rerun(self, tiny_pim_a):
        """Folding in a small batch recomputes much less than a re-run."""
        domain = PimDomainModel()
        refs = list(tiny_pim_a.store)
        person_refs = [r for r in refs if r.class_name == "Person"]
        # Hold out a handful of refs nothing points at.
        pointed = set()
        for ref in refs:
            for attr, values in ref.values.items():
                if tiny_pim_a.store.schema.cls(ref.class_name).attribute(attr).is_association:
                    pointed.update(values)
        batch_ids = [r.ref_id for r in person_refs if r.ref_id not in pointed][:15]
        batch_set = set(batch_ids)

        def strip(ref):
            values = {}
            for attr, vals in ref.values.items():
                if tiny_pim_a.store.schema.cls(ref.class_name).attribute(attr).is_association:
                    vals = tuple(v for v in vals if v not in batch_set)
                    if not vals:
                        continue
                values[attr] = vals
            return Reference(ref.ref_id, ref.class_name, values, ref.source)

        base = [strip(r) for r in refs if r.ref_id not in batch_set]
        batch = [strip(r) for r in refs if r.ref_id in batch_set]

        incremental = IncrementalReconciler(
            ReferenceStore(domain.schema, base), PimDomainModel(), EngineConfig()
        )
        incremental.initial()
        base_recomp = incremental.reconciler.stats.recomputations
        incremental.add(batch)
        delta = incremental.reconciler.stats.recomputations - base_recomp

        full = Reconciler(
            ReferenceStore(domain.schema, base + batch),
            PimDomainModel(),
            EngineConfig(),
        )
        full.run()
        assert delta < full.stats.recomputations * 0.5
