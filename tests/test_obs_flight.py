"""Flight recorder, crash bundles, and heavy-hitter attribution.

Three contracts:

* the recorder and the hotspot sketch are bounded-memory and strictly
  observational — partitions, provenance and the manifest's invariant
  view are byte-identical with them attached (the default) or detached;
* crash bundles are schema-valid, atomically written, and carry the
  rings, stacks, config fingerprint and worker-lane digests;
* the Space-Saving sketch is deterministic (tie-break on key) and its
  error bound holds.
"""

import json
from types import SimpleNamespace

import pytest

from repro.core import EngineConfig, Reconciler
from repro.datasets import generate_cora_dataset, generate_pim_dataset
from repro.datasets.cora import CoraConfig
from repro.domains import CoraDomainModel, PimDomainModel
from repro.obs import (
    CRASH_BUNDLE_FILENAME,
    FlightRecorder,
    HotspotSketch,
    SpaceSaving,
    Telemetry,
    TelemetryRelay,
    build_crash_bundle,
    build_manifest,
    dump_crash_bundle,
    gini,
    invariant_view,
    load_crash_bundle,
    validate_crash_bundle,
)
from repro.obs.metrics import MetricsRegistry
from repro.similarity import clear_similarity_caches


class TestFlightRecorder:
    def test_rings_are_bounded_and_ordered(self):
        recorder = FlightRecorder(ring_size=4)
        for step in range(10):
            recorder.note_event("tick", step=step)
        assert len(recorder.events) == 4
        # Oldest entries fell off; the survivors keep arrival order.
        assert [entry["step"] for entry in recorder.events] == [6, 7, 8, 9]

    def test_seq_is_monotone_across_rings(self):
        recorder = FlightRecorder()
        recorder.note_event("build_start")
        recorder.note_decision(("a", "b"), "Person", "merge", 0.91)
        recorder.note_chunk("build pool", 0.25, pairs=10)
        recorder.note_degradation("deadline", "out of time")
        snapshot = recorder.snapshot()
        seqs = [
            entry["seq"]
            for ring in ("events", "decisions", "chunks", "degradations")
            for entry in snapshot[ring]
        ]
        assert seqs == [1, 2, 3, 4]
        assert snapshot["noted"] == 4

    def test_decision_entry_shape(self):
        recorder = FlightRecorder()
        recorder.note_decision(("x", "y"), "Venue", "defer", 0.123456789)
        recorder.note_decision(("x", "z"), "Venue", "merge", None)
        first, second = recorder.decisions
        assert first["pair"] == ["x", "y"]
        assert first["score"] == 0.123457  # rounded to 6 places
        assert second["score"] is None

    def test_snapshot_is_json_serializable(self):
        recorder = FlightRecorder()
        recorder.note_event("iterate_start", queued=5)
        recorder.note_chunk("iterate fork", 0.001, keys=3)
        json.dumps(recorder.snapshot())


class TestSpaceSaving:
    def test_exact_below_capacity(self):
        sketch = SpaceSaving(capacity=8)
        for key, weight in [("a", 3.0), ("b", 1.0), ("a", 2.0)]:
            sketch.add(key, weight)
        assert sketch.top(10) == [("a", 5.0, 2, 0.0), ("b", 1.0, 1, 0.0)]
        assert sketch.updates == 3
        assert sketch.total_weight == 6.0

    def test_eviction_inherits_weight_as_error(self):
        sketch = SpaceSaving(capacity=2)
        sketch.add("heavy", 10.0)
        sketch.add("light", 1.0)
        sketch.add("new", 1.0)  # evicts "light" (minimum weight)
        keys = {key for key, *_ in sketch.top(10)}
        assert keys == {"heavy", "new"}
        (weight, count, error) = next(
            (w, c, e) for key, w, c, e in sketch.top(10) if key == "new"
        )
        assert weight == 2.0  # victim weight + own weight
        assert error == 1.0  # overestimation bounded by the victim
        assert count == 1

    def test_deterministic_tie_break_on_key(self):
        # Same stream twice -> byte-identical top() output, even with
        # all-equal weights forcing tie-breaks.
        def run():
            sketch = SpaceSaving(capacity=3)
            for key in ["d", "b", "c", "a", "e", "b", "a"]:
                sketch.add(key, 1.0)
            return sketch.top(10)

        assert run() == run()

    def test_error_bound_holds(self):
        # A key with true weight above N/k is guaranteed present, and no
        # reported weight overestimates by more than its recorded error.
        sketch = SpaceSaving(capacity=4)
        true_weights: dict = {}
        for index in range(100):
            key = "hot" if index % 2 else f"cold{index}"
            sketch.add(key, 1.0)
            true_weights[key] = true_weights.get(key, 0.0) + 1.0
        reported = {key: (w, e) for key, w, _, e in sketch.top(10)}
        assert "hot" in reported  # 50 > 100/4
        for key, (weight, error) in reported.items():
            assert weight - error <= true_weights.get(key, 0.0) <= weight
            assert error <= sketch.error_bound()


class TestGini:
    def test_uniform_is_zero(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_degenerate_inputs(self):
        assert gini([]) == 0.0
        assert gini([7]) == 0.0
        assert gini([0, 0]) == 0.0

    def test_skew_increases_gini(self):
        assert gini([1, 1, 1, 97]) > gini([20, 25, 25, 30]) > 0.0


class TestHotspotSketch:
    def _index(self, sizes, oversized=0):
        return SimpleNamespace(
            block_sizes=lambda: dict(sizes), oversized_blocks=oversized
        )

    def test_note_blocks_records_skew_and_pair_weights(self):
        sketch = HotspotSketch()
        sketch.note_blocks(
            "Person", self._index({"t:smith": 10, "t:rare": 2, "t:solo": 1})
        )
        skew = sketch.skew["Person"]
        assert skew["blocks"] == 3
        assert skew["references"] == 13
        assert skew["max_block"] == "t:smith"
        assert skew["max_block_size"] == 10
        # 45 of 46 candidate pairs live in the big block.
        assert skew["max_pair_share"] == pytest.approx(45 / 46, abs=1e-4)
        top = sketch.blocks.top(10)
        assert top[0] == ("Person/t:smith", 45.0, 1, 0.0)
        # Singleton blocks contribute no pairs and are not tracked.
        assert all(key != "Person/t:solo" for key, *_ in top)

    def test_note_blocks_empty_class(self):
        sketch = HotspotSketch()
        sketch.note_blocks("Venue", self._index({}, oversized=2))
        assert sketch.skew["Venue"]["blocks"] == 0
        assert sketch.skew["Venue"]["max_block"] is None
        assert sketch.skew["Venue"]["oversized"] == 2

    def test_summary_is_json_serializable_and_sorted(self):
        sketch = HotspotSketch()
        sketch.note_blocks("B", self._index({"x": 3}))
        sketch.note_blocks("A", self._index({"y": 2}))
        sketch.note_pair(("r1", "r2"), "A", 0.002)
        sketch.note_channels({"name": 0.9, "email": 0.1})
        summary = sketch.summary()
        json.dumps(summary)
        assert list(summary["skew"]) == ["A", "B"]
        assert summary["pair_updates"] == 1
        assert summary["top_pairs"][0]["pair"] == "A:r1|r2"
        assert {c["channel"] for c in summary["channels"]} == {"name", "email"}

    def test_export_metrics_gauges(self):
        sketch = HotspotSketch()
        sketch.note_blocks("A", self._index({"x": 4, "y": 1}, oversized=1))
        registry = MetricsRegistry()
        sketch.export_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["repro_block_skew_gini"]["value"] > 0
        assert snapshot["repro_block_max_pair_share"]["value"] == 1.0
        assert snapshot["repro_oversized_blocks"]["value"] == 1

    def test_export_metrics_noop_when_empty(self):
        registry = MetricsRegistry()
        HotspotSketch().export_metrics(registry)
        assert "repro_block_skew_gini" not in registry


class TestCrashBundle:
    def test_bundle_from_finished_engine(self, tiny_pim_a):
        clear_similarity_caches()
        engine = Reconciler(tiny_pim_a.store, PimDomainModel(), EngineConfig())
        engine.run()
        bundle = build_crash_bundle(
            reason="test", engine=engine, phase="iterate", stop_reason="converged"
        )
        validate_crash_bundle(bundle)
        assert bundle["config"]  # config fingerprint captured
        assert bundle["stats"]["merges"] > 0
        assert bundle["rings"]["decisions"]  # the always-on ring was fed
        assert bundle["rings"]["events"][0]["event"] == "build_start"
        assert bundle["stacks"]  # at least the dumping thread
        assert bundle["exception"] is None

    def test_bundle_with_exception(self):
        try:
            raise ValueError("boom")
        except ValueError as exc:
            bundle = build_crash_bundle(reason="unhandled ValueError", exc=exc)
        validate_crash_bundle(bundle)
        assert bundle["exception"]["type"] == "ValueError"
        assert bundle["exception"]["message"] == "boom"
        assert any("boom" in line for line in bundle["exception"]["traceback"])

    def test_dump_and_load_roundtrip(self, tmp_path):
        bundle = build_crash_bundle(reason="smoke")
        path = dump_crash_bundle(tmp_path, bundle)
        assert path.name == CRASH_BUNDLE_FILENAME
        assert load_crash_bundle(tmp_path) == json.loads(path.read_text())
        assert load_crash_bundle(path)["reason"] == "smoke"
        assert load_crash_bundle(tmp_path / "missing") is None
        # No tmp-file debris from the atomic writer.
        assert [p.name for p in tmp_path.iterdir()] == [CRASH_BUNDLE_FILENAME]

    def test_dump_survives_exotic_ring_values(self, tmp_path):
        recorder = FlightRecorder()
        recorder.note_event("weird", payload=object())  # not JSON-able
        engine = SimpleNamespace(
            config=EngineConfig(),
            stats=Reconciler(
                generate_pim_dataset("A", scale=0.05).store,
                PimDomainModel(),
                EngineConfig(),
            ).stats,
            flight=recorder,
            _relay=None,
        )
        bundle = build_crash_bundle(reason="exotic", engine=engine)
        path = dump_crash_bundle(tmp_path, bundle)  # default=repr saves it
        assert "<object object" in path.read_text()

    def test_lane_rings_feed_worker_lanes(self):
        relay = TelemetryRelay(Telemetry.enabled(metrics=True))
        payload = {
            "pid": 4242,
            "tid": 1,
            "process_name": "scoring worker",
            "spans": [("score_chunk", "worker", 0.0, 0.1, {})],
            "counters": {"repro_worker_chunks_total": 1},
            "observations": {},
            "events": [("info", "chunk_done", {})],
        }
        relay.absorb(dict(payload))
        relay.lane_died(4242, "chaos", lane="scoring worker")
        bundle = build_crash_bundle(reason="collapse", relay=relay)
        validate_crash_bundle(bundle)
        lanes = bundle["worker_lanes"]
        assert lanes["lanes"]["4242"]["process_name"] == "scoring worker"
        digest = lanes["lanes"]["4242"]["recent"][0]
        assert digest["spans"] == ["score_chunk"]
        assert digest["events"] == [["info", "chunk_done"]]
        assert digest["counters"] == {"repro_worker_chunks_total": 1}
        assert lanes["deaths"] == [
            {"pid": 4242, "reason": "chaos", "lane": "scoring worker"}
        ]

    def test_lane_ring_eviction_is_bounded(self):
        from repro.obs.relay import _LANE_RING_DEPTH, _MAX_LANE_RINGS

        relay = TelemetryRelay(Telemetry.enabled(metrics=True))
        for pid in range(_MAX_LANE_RINGS + 10):
            for _ in range(_LANE_RING_DEPTH + 3):
                relay.absorb(
                    {
                        "pid": pid,
                        "tid": 1,
                        "process_name": "iterate child",
                        "spans": [],
                        "counters": {"c": 1},
                        "observations": {},
                        "events": [],
                    }
                )
        assert len(relay.lane_rings) == _MAX_LANE_RINGS
        # Least-recently-shipping lanes (the earliest pids) were evicted.
        assert 0 not in relay.lane_rings
        assert all(
            len(ring) == _LANE_RING_DEPTH for ring in relay.lane_rings.values()
        )


def _dataset(name):
    if name == "cora":
        return (
            generate_cora_dataset(
                CoraConfig(n_papers=30, n_citations=260, n_authors=60, n_venues=12)
            ),
            CoraDomainModel,
        )
    return generate_pim_dataset(name, scale=0.15), PimDomainModel


def _observed_run(dataset, domain_factory, config, *, detach):
    """One run with provenance recording; *detach* removes the recorder."""
    clear_similarity_caches()
    telemetry = Telemetry.enabled(provenance=True, metrics=True)
    engine = Reconciler(
        dataset.store, domain_factory(), config, telemetry=telemetry
    )
    if detach:
        engine.flight = None
        engine.hotspots = None
    result = engine.run()
    decisions = [
        (r.pair, r.class_name, r.decision, round(r.score, 9))
        for r in telemetry.provenance.records
    ]
    manifest = build_manifest(dataset=dataset, reconciler=engine, result=result)
    return result, decisions, invariant_view(manifest)


@pytest.mark.parametrize("name", ["A", "B", "C", "D", "cora"])
def test_recorder_identity_serial(name):
    """Partitions, provenance and the manifest's invariant view are
    byte-identical with the flight recorder + hotspot sketch attached
    (the default) or detached."""
    dataset, domain_factory = _dataset(name)
    on = _observed_run(dataset, domain_factory, EngineConfig(), detach=False)
    off = _observed_run(dataset, domain_factory, EngineConfig(), detach=True)
    assert on[0].partitions == off[0].partitions
    assert on[1] == off[1]
    assert json.dumps(on[2], sort_keys=True) == json.dumps(off[2], sort_keys=True)


@pytest.mark.parametrize("name", ["A", "B", "C", "D", "cora"])
def test_recorder_identity_parallel(name):
    """Same contract under workers=2 + iterate_workers=2: the recorder
    observes supervised chunks and lane rings without perturbing them."""
    dataset, domain_factory = _dataset(name)
    config = EngineConfig(workers=2, iterate_workers=2, iterate_batch=16)
    on = _observed_run(dataset, domain_factory, config, detach=False)
    off = _observed_run(dataset, domain_factory, config, detach=True)
    assert on[0].partitions == off[0].partitions
    assert on[1] == off[1]
    assert json.dumps(on[2], sort_keys=True) == json.dumps(off[2], sort_keys=True)


def test_manifest_execution_carries_hotspots(tiny_pim_a):
    clear_similarity_caches()
    engine = Reconciler(tiny_pim_a.store, PimDomainModel(), EngineConfig())
    result = engine.run()
    manifest = build_manifest(dataset=tiny_pim_a, reconciler=engine, result=result)
    hotspots = manifest["execution"]["hotspots"]
    assert hotspots["pair_updates"] > 0
    assert "Person" in hotspots["skew"]
    # Execution-only: the invariant view must not see attribution.
    assert "execution" not in invariant_view(manifest)


def test_engine_checkpoint_carries_no_recorder_state(tiny_pim_a):
    from repro.runtime.checkpoint import engine_state

    clear_similarity_caches()
    engine = Reconciler(tiny_pim_a.store, PimDomainModel(), EngineConfig())
    engine.run()
    state = json.dumps(engine_state(engine))
    assert "flight" not in state
    assert "hotspot" not in state
