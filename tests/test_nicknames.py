"""Tests for the nickname knowledge base."""

from repro.similarity.nicknames import (
    KNOWN_GIVEN_NAMES,
    NICKNAMES,
    all_name_forms,
    canonical_given_names,
    share_canonical_given_name,
)


class TestCanonical:
    def test_nickname_maps_to_formal(self):
        assert "michael" in canonical_given_names("mike")
        assert "deborah" in canonical_given_names("deb")

    def test_formal_maps_to_itself(self):
        assert canonical_given_names("michael") == {"michael"}

    def test_nickname_keeps_itself(self):
        assert "mike" in canonical_given_names("mike")


class TestSharing:
    def test_share(self):
        assert share_canonical_given_name("Mike", "Michael")
        assert share_canonical_given_name("kathy", "katherine")
        assert share_canonical_given_name("bill", "william")

    def test_no_share(self):
        assert not share_canonical_given_name("mike", "matt")
        assert not share_canonical_given_name("deborah", "dorothy")

    def test_two_nicknames_of_one_formal(self):
        assert share_canonical_given_name("bill", "will")


class TestAllForms:
    def test_round_trip(self):
        forms = all_name_forms("deborah")
        assert "deb" in forms and "debbie" in forms

    def test_from_nickname(self):
        forms = all_name_forms("deb")
        assert "deborah" in forms

    def test_known_names_cover_table(self):
        for nickname, formals in NICKNAMES.items():
            assert nickname in KNOWN_GIVEN_NAMES
            for formal in formals:
                assert formal in KNOWN_GIVEN_NAMES
