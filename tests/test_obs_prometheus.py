"""Prometheus exposition escaping: label values containing quotes,
backslashes and newlines must round-trip through to_prometheus ->
parse_labels unchanged (format 0.0.4 rules)."""

import pytest

from repro.obs import (
    MetricsRegistry,
    escape_label_value,
    format_labels,
    parse_labels,
    parse_prometheus,
    unescape_label_value,
    validate_metrics_snapshot,
)

HOSTILE_VALUES = [
    'say "B"',
    "back\\slash",
    "line\nbreak",
    'all \\ of "it"\ntogether',
    r"literal \n not a newline",
    "",
    "plain",
]


class TestEscaping:
    @pytest.mark.parametrize("value", HOSTILE_VALUES)
    def test_round_trip(self, value):
        assert unescape_label_value(escape_label_value(value)) == value

    def test_escape_order_backslash_first(self):
        # a quote must become \" — not have its backslash re-escaped
        assert escape_label_value('"') == '\\"'
        assert escape_label_value("\\") == "\\\\"
        assert escape_label_value("\n") == "\\n"
        # literal backslash-n stays distinguishable from a newline
        assert escape_label_value("\\n") == "\\\\n"
        assert unescape_label_value("\\\\n") == "\\n"
        assert unescape_label_value("\\n") == "\n"

    def test_format_labels_sorted_and_quoted(self):
        rendered = format_labels({"b": "2", "a": 'say "hi"'})
        assert rendered == '{a="say \\"hi\\"",b="2"}'
        assert format_labels({}) == ""
        assert format_labels(None) == ""


class TestExpositionRoundTrip:
    def test_run_info_with_quoted_dataset(self):
        registry = MetricsRegistry()
        registry.counter("repro_merges_total", "merges").inc(3)
        hostile = 'PIM "B" \\ variant\nline2'
        registry.absorb_run_info(dataset=hostile, algorithm="depgraph")
        text = registry.to_prometheus()

        samples = parse_prometheus(text)
        info_keys = [key for key in samples if key.startswith("repro_run_info")]
        assert len(info_keys) == 1
        assert samples[info_keys[0]] == 1.0
        name, labels = parse_labels(info_keys[0])
        assert name == "repro_run_info"
        assert labels == {"dataset": hostile, "algorithm": "depgraph"}
        # the exposition text itself must be single-line per sample
        for line in text.splitlines():
            assert not line.startswith("repro_run_info") or "\\n" in line

    def test_absorb_run_info_updates_labels(self):
        registry = MetricsRegistry()
        registry.absorb_run_info(dataset="first", algorithm="depgraph")
        registry.absorb_run_info(dataset="second", algorithm="depgraph")
        _, labels = parse_labels(
            next(
                key
                for key in parse_prometheus(registry.to_prometheus())
                if key.startswith("repro_run_info")
            )
        )
        assert labels["dataset"] == "second"

    def test_parse_labels_on_bare_name(self):
        assert parse_labels("repro_merges_total") == ("repro_merges_total", {})

    def test_snapshot_carries_labels_and_validates(self):
        registry = MetricsRegistry()
        registry.counter("repro_merges_total", "merges").inc()
        registry.absorb_run_info(dataset='d"s', algorithm="depgraph")
        snapshot = registry.snapshot()
        assert validate_metrics_snapshot(snapshot) >= 2
        info = snapshot["repro_run_info"]
        assert info["labels"] == {"dataset": 'd"s', "algorithm": "depgraph"}
        assert snapshot["repro_merges_total"].get("labels") is None
