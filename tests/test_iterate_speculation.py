"""Speculative batched parallel iterate: byte-identity and failure
containment.

The executor's contract (see ``perf/speculate.py``): with
``iterate_workers=N`` the engine forks chunks of upcoming queue keys,
scores them against copy-on-write snapshots, and commits validated
results in exact pop order — so the partition, every decision in the
provenance log, and every deterministic counter are byte-identical to
the serial loop. Chaos (killed children, injected comparator faults)
may only cost speculation coverage, never change a result.
"""

import dataclasses
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EngineConfig, Reconciler, ReferenceStore
from repro.core.queue import ActiveQueue
from repro.datasets import generate_cora_dataset, generate_pim_dataset
from repro.domains import CoraDomainModel, PimDomainModel
from repro.obs import Telemetry
from repro.runtime import ChaosInjector

from .test_engine_properties import micro_worlds

#: EngineStats fields that legitimately differ between a serial and a
#: speculative run: execution-shaping counters and timings, never
#: decisions.
EXECUTION_FIELDS = frozenset(
    {
        "build_seconds",
        "iterate_seconds",
        "iterate_workers",
        "speculated_nodes",
        "speculation_hits",
        "speculation_invalidated",
        "speculation_dropped",
        "queue_compactions",
        "values_cache_hits",
        "values_cache_misses",
        "contacts_cache_hits",
        "contacts_cache_misses",
        "feature_cache_hits",
        "feature_cache_misses",
        "pair_memo_hits",
        "pair_memo_misses",
        "prefilter_skips",
        "task_retries",
        "task_timeouts",
        "pool_rebuilds",
        "pairs_poisoned",
        "degradations",
        "convergence_samples",
    }
)


def _deterministic_stats(stats) -> dict:
    return {
        f.name: getattr(stats, f.name)
        for f in dataclasses.fields(stats)
        if f.name not in EXECUTION_FIELDS
    }


def _decisions(telemetry) -> list:
    # DecisionRecord is a frozen dataclass: whole-record equality
    # compares every field, channel scores and triggers included.
    return list(telemetry.provenance.records)


def _run(refs, domain, config=None, chaos=None, provenance=False):
    telemetry = Telemetry.enabled(provenance=True) if provenance else None
    engine = Reconciler(
        ReferenceStore(domain.schema, refs), domain, config, telemetry=telemetry
    )
    if chaos is not None:
        engine.chaos = chaos
    result = engine.run()
    return engine, result, telemetry


def _pim_refs(name):
    dataset = generate_pim_dataset(name, scale=0.12, seed=11)
    return list(dataset.store), PimDomainModel()


def _cora_refs():
    from repro.datasets.cora import CoraConfig

    dataset = generate_cora_dataset(
        CoraConfig(n_papers=10, n_citations=80, n_authors=25, n_venues=5, seed=5)
    )
    return list(dataset.store), CoraDomainModel()


class TestByteIdentity:
    """Partition, provenance log, and deterministic counters equal the
    serial run's on the paper's benchmark families."""

    @pytest.mark.parametrize("name", ["A", "B", "C", "D"])
    @pytest.mark.parametrize("iterate_workers,batch", [(2, 16), (4, 64)])
    def test_pim_datasets(self, name, iterate_workers, batch):
        refs, domain = _pim_refs(name)
        serial_engine, serial, serial_tel = _run(refs, domain, provenance=True)
        config = replace(
            EngineConfig(), iterate_workers=iterate_workers, iterate_batch=batch
        )
        spec_engine, spec, spec_tel = _run(refs, domain, config, provenance=True)
        assert spec.partitions == serial.partitions
        assert _decisions(spec_tel) == _decisions(serial_tel)
        assert _deterministic_stats(spec_engine.stats) == _deterministic_stats(
            serial_engine.stats
        )

    def test_cora_like(self):
        refs, domain = _cora_refs()
        serial_engine, serial, serial_tel = _run(refs, domain, provenance=True)
        config = replace(EngineConfig(), iterate_workers=2, iterate_batch=32)
        spec_engine, spec, spec_tel = _run(refs, domain, config, provenance=True)
        assert spec.partitions == serial.partitions
        assert _decisions(spec_tel) == _decisions(serial_tel)
        assert _deterministic_stats(spec_engine.stats) == _deterministic_stats(
            serial_engine.stats
        )

    def test_speculation_actually_ran(self):
        refs, domain = _pim_refs("B")
        config = replace(EngineConfig(), iterate_workers=2, iterate_batch=16)
        engine, _, _ = _run(refs, domain, config)
        assert engine.stats.iterate_workers == 2
        assert engine.stats.speculated_nodes > 0


class TestCommitSequenceProperty:
    """Under random worlds and a window small enough to force constant
    refills, the speculative run's decision sequence must equal the
    serial oracle's, decision for decision, in order."""

    @given(micro_worlds(), st.sampled_from([2, 3, 4, 8]))
    @settings(max_examples=8, deadline=None)
    def test_matches_serial_oracle(self, world, batch):
        references, _ = world
        domain = PimDomainModel()
        _, serial, serial_tel = _run(references, domain, provenance=True)
        config = replace(EngineConfig(), iterate_workers=2, iterate_batch=batch)
        _, spec, spec_tel = _run(references, domain, config, provenance=True)
        assert spec.partitions == serial.partitions
        assert _decisions(spec_tel) == _decisions(serial_tel)


class TestChaosContainment:
    """Failed speculation must cost coverage only: dropped chunks,
    ladder descent to the serial loop — never a changed partition,
    never a leaked child."""

    def test_persistent_kills_descend_to_serial_identically(self):
        refs, domain = _pim_refs("B")
        _, serial, _ = _run(refs, domain)
        config = replace(
            EngineConfig(),
            iterate_workers=2,
            iterate_batch=16,
            max_task_retries=1,
            retry_backoff=0.0,
        )
        chaos = ChaosInjector(kill_every=1)
        engine, result, _ = _run(refs, domain, config, chaos=chaos)
        assert result.completed
        assert result.partitions == serial.partitions
        assert engine.stats.speculation_dropped > 0
        assert engine.stats.speculation_hits == 0
        kinds = [event.kind for event in engine.stats.degradations]
        assert "parallel_fallback" in kinds

    def test_injected_faults_drop_chunks_identically(self):
        refs, domain = _pim_refs("B")
        _, serial, _ = _run(refs, domain)
        config = replace(
            EngineConfig(),
            iterate_workers=2,
            iterate_batch=16,
            max_task_retries=1,
            retry_backoff=0.0,
        )
        # A deterministic comparator bug in ~1/4 of all chunks: the
        # affected chunks are dropped and recomputed in-line.
        chaos = ChaosInjector(raise_pair_crc_mod=4, raise_pair_crc_rem=0)
        engine, result, _ = _run(refs, domain, config, chaos=chaos)
        assert result.completed
        assert result.partitions == serial.partitions
        assert engine.stats.speculation_dropped > 0


class TestSpeculationLedger:
    """Unit semantics of the seq-numbered validation ledger."""

    def _ledger(self):
        from repro.core.partition import UnionFind
        from repro.perf.speculate import SpeculationLedger

        uf = UnionFind(("a", "b", "c", "d"))
        return uf, SpeculationLedger(uf)

    def test_clean_snapshot_is_valid(self):
        _, ledger = self._ledger()
        assert ledger.valid(["a", "b"], [("a", "b")], fork_seq=ledger.seq)

    def test_union_invalidates_touched_roots_only(self):
        uf, ledger = self._ledger()
        fork_seq = ledger.seq
        uf.union("a", "b")
        assert not ledger.valid(["a"], [], fork_seq)
        assert not ledger.valid(["b"], [], fork_seq)
        assert ledger.valid(["c"], [], fork_seq)
        # A chunk forked after the union sees it: still valid.
        assert ledger.valid(["a"], [], ledger.seq)

    def test_commit_invalidates_pair_readers(self):
        _, ledger = self._ledger()
        fork_seq = ledger.seq
        ledger.note_commit(("c", "d"))
        assert not ledger.valid([], [("c", "d")], fork_seq)
        assert ledger.valid([], [("a", "b")], fork_seq)

    def test_close_unhooks_the_union_listener(self):
        uf, ledger = self._ledger()
        ledger.close()
        fork_seq = ledger.seq
        uf.union("a", "b")
        # No longer listening: the union goes unrecorded.
        assert ledger.valid(["a"], [], fork_seq)


class TestQueueCompaction:
    """The lazy-discard leak fix: heavy discarding compacts the deque
    instead of accumulating stale slots forever."""

    def test_discard_heavy_queue_compacts(self):
        queue = ActiveQueue((f"k{i}", f"m{i}") for i in range(100))
        for i in range(80):
            queue.discard((f"k{i}", f"m{i}"))
        assert queue.compactions >= 1
        assert len(queue._deque) <= 2 * len(queue._members)
        # Pop order of the survivors is untouched.
        popped = [queue.pop() for _ in range(len(queue))]
        assert popped == [(f"k{i}", f"m{i}") for i in range(80, 100)]

    def test_tiny_queues_never_compact(self):
        queue = ActiveQueue((f"k{i}", f"m{i}") for i in range(10))
        for i in range(10):
            queue.discard((f"k{i}", f"m{i}"))
        assert queue.compactions == 0

    def test_peek_batch_is_non_destructive_and_bounded(self):
        queue = ActiveQueue((f"k{i}", f"m{i}") for i in range(50))
        peeked = queue.peek_batch(8)
        assert peeked == [(f"k{i}", f"m{i}") for i in range(8)]
        assert len(queue) == 50
        # max_scan bounds the stale sweep, possibly short-reading.
        for i in range(40):
            queue.discard((f"k{i}", f"m{i}"))
        limited = queue.peek_batch(8, max_scan=5)
        assert len(limited) <= 5
