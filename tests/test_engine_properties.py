"""Property-based engine tests over random micro-worlds.

Hypothesis generates small person/article reference sets; the engine
must uphold its invariants on every one of them: each reference lands
in exactly one partition, results are deterministic and queue-order
independent, enemies never share a cluster, and adding evidence can
only merge more (monotonicity at the system level).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EngineConfig, Reconciler, Reference, ReferenceStore
from repro.core.nodes import NodeStatus
from repro.datasets.generator.names import NamePool, format_name
from repro.domains import PimDomainModel

_STYLES = ("first_last", "last_comma_initials", "initial_last", "nickname", "first_only")
_DOMAINS = ("x.edu", "y.org", "mail.com")


@st.composite
def micro_worlds(draw):
    """A handful of entities, each rendered as 2-5 references."""
    seed = draw(st.integers(0, 2**20))
    rng = random.Random(seed)
    n_entities = draw(st.integers(1, 5))
    pool = NamePool(rng, homonym_rate=0.0)
    references: list[Reference] = []
    gold: dict[str, str] = {}
    counter = 0
    for entity_index in range(n_entities):
        name = pool.draw()
        email = f"{name.given}.{name.surname}@{rng.choice(_DOMAINS)}"
        n_refs = draw(st.integers(2, 4))
        for _ in range(n_refs):
            values = {}
            if rng.random() < 0.8:
                values["name"] = (format_name(name, rng.choice(_STYLES)),)
            if rng.random() < 0.6:
                values["email"] = (email,)
            if not values:
                values["name"] = (format_name(name, "first_last"),)
            ref_id = f"r{counter:03d}"
            counter += 1
            references.append(Reference(ref_id, "Person", values))
            gold[ref_id] = f"e{entity_index}"
    return references, gold


def _run(references, config=None):
    domain = PimDomainModel()
    store = ReferenceStore(domain.schema, references)
    reconciler = Reconciler(store, domain, config or EngineConfig())
    return reconciler, reconciler.run()


class TestEngineProperties:
    @given(micro_worlds())
    @settings(max_examples=25, deadline=None)
    def test_partition_is_exact_cover(self, world):
        references, _ = world
        _, result = _run(references)
        seen = [ref for cluster in result.clusters("Person") for ref in cluster]
        assert sorted(seen) == sorted(ref.ref_id for ref in references)

    @given(micro_worlds())
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, world):
        references, _ = world
        _, first = _run(references)
        _, second = _run(references)
        assert first.partitions == second.partitions

    @given(micro_worlds())
    @settings(max_examples=15, deadline=None)
    def test_queue_order_independent(self, world):
        references, _ = world
        _, front = _run(references, EngineConfig(strong_to_front=True))
        _, fifo = _run(references, EngineConfig(strong_to_front=False))
        assert front.partitions == fifo.partitions

    @given(micro_worlds())
    @settings(max_examples=15, deadline=None)
    def test_statuses_consistent_with_partition(self, world):
        references, _ = world
        reconciler, _ = _run(references)
        for node in reconciler.graph.nodes():
            if node.status is NodeStatus.MERGED:
                assert reconciler.uf.connected(node.left, node.right)
            elif node.status is NodeStatus.NON_MERGE:
                assert not reconciler.uf.connected(node.left, node.right)

    @given(micro_worlds())
    @settings(max_examples=15, deadline=None)
    def test_more_evidence_never_splits(self, world):
        """System-level monotonicity: enabling the cross channel can
        only merge more pairs, never fewer (constraints held fixed)."""
        references, _ = world
        _, without = _run(
            references,
            EngineConfig(
                disabled_channels=frozenset({"name_email"}), constraints=False
            ),
        )
        _, with_cross = _run(references, EngineConfig(constraints=False))
        merged_without = {
            pair
            for cluster in without.clusters("Person")
            for pair in _pairs(cluster)
        }
        merged_with = {
            pair
            for cluster in with_cross.clusters("Person")
            for pair in _pairs(cluster)
        }
        assert merged_without <= merged_with

    @given(micro_worlds())
    @settings(max_examples=15, deadline=None)
    def test_same_email_always_merges(self, world):
        references, _ = world
        _, result = _run(references)
        by_email: dict[str, list[str]] = {}
        for reference in references:
            for email in reference.get("email"):
                by_email.setdefault(email, []).append(reference.ref_id)
        for refs in by_email.values():
            for other in refs[1:]:
                assert result.same_entity(refs[0], other)


def _pairs(cluster):
    return {
        (cluster[i], cluster[j])
        for i in range(len(cluster))
        for j in range(i + 1, len(cluster))
    }
