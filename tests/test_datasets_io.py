"""Tests for dataset serialisation round-trips."""

import json

import pytest

from repro.core import Reference
from repro.datasets.io import (
    load_dataset,
    reference_from_dict,
    reference_to_dict,
    save_dataset,
    schema_from_dict,
    schema_to_dict,
)
from repro.domains import CORA_SCHEMA, PIM_SCHEMA


class TestSchemaRoundTrip:
    @pytest.mark.parametrize("schema", [PIM_SCHEMA, CORA_SCHEMA])
    def test_round_trip(self, schema):
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored.class_names == schema.class_names
        for schema_class in schema:
            restored_class = restored.cls(schema_class.name)
            assert restored_class.attributes == schema_class.attributes


class TestReferenceRoundTrip:
    def test_round_trip(self):
        reference = Reference(
            "r1",
            "Person",
            {"name": ("A", "B"), "coAuthor": ("r2",)},
            source="email",
        )
        restored = reference_from_dict(reference_to_dict(reference))
        assert restored == reference

    def test_json_serialisable(self):
        reference = Reference("r1", "Person", {"name": ("Ann",)})
        json.dumps(reference_to_dict(reference))


class TestDatasetRoundTrip:
    def test_save_and_load(self, tiny_pim_a, tmp_path):
        save_dataset(tiny_pim_a, tmp_path / "ds")
        restored = load_dataset(tmp_path / "ds")
        assert restored.name == tiny_pim_a.name
        assert len(restored.store) == len(tiny_pim_a.store)
        assert restored.gold.entity_of == tiny_pim_a.gold.entity_of
        assert restored.gold.source_of == tiny_pim_a.gold.source_of
        # Values preserved exactly.
        for reference in tiny_pim_a.store:
            assert restored.store.get(reference.ref_id).values == reference.values

    def test_gold_optional(self, tmp_path, example1_store):
        from repro.datasets import Dataset
        from repro.datasets.gold import GoldStandard

        dataset = Dataset(name="X", store=example1_store, gold=GoldStandard())
        save_dataset(dataset, tmp_path / "nogold")
        assert not (tmp_path / "nogold" / "gold.jsonl").exists()
        restored = load_dataset(tmp_path / "nogold")
        assert not restored.gold.entity_of
        assert len(restored.store) == len(example1_store)

    def test_reconciles_after_round_trip(self, tmp_path, example1_store):
        from repro.core import EngineConfig, Reconciler
        from repro.datasets import Dataset
        from repro.datasets.gold import GoldStandard
        from repro.domains import PimDomainModel

        dataset = Dataset(name="X", store=example1_store, gold=GoldStandard())
        save_dataset(dataset, tmp_path / "ex1")
        restored = load_dataset(tmp_path / "ex1")
        result = Reconciler(restored.store, PimDomainModel(), EngineConfig()).run()
        assert result.clusters("Person") == [
            ["p1", "p4"],
            ["p2", "p5", "p8", "p9"],
            ["p3", "p6", "p7"],
        ]
