"""Tests for B-cubed, exact-cluster metrics and variation of information."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.clustering import (
    bcubed_scores,
    cluster_scores,
    variation_of_information,
)

GOLD = {"a1": "A", "a2": "A", "a3": "A", "b1": "B", "b2": "B", "c1": "C"}
PERFECT = [["a1", "a2", "a3"], ["b1", "b2"], ["c1"]]


class TestBCubed:
    def test_perfect(self):
        scores = bcubed_scores(PERFECT, GOLD)
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f_measure == 1.0

    def test_all_singletons(self):
        scores = bcubed_scores([[r] for r in GOLD], GOLD)
        assert scores.precision == 1.0
        # recall(r) = 1/|gold cluster of r|
        expected = (3 * (1 / 3) + 2 * (1 / 2) + 1) / 6
        assert scores.recall == pytest.approx(expected)

    def test_one_big_cluster(self):
        scores = bcubed_scores([list(GOLD)], GOLD)
        assert scores.recall == 1.0
        expected = (3 * (3 / 6) + 2 * (2 / 6) + 1 * (1 / 6)) / 6
        assert scores.precision == pytest.approx(expected)

    def test_less_dominated_by_large_clusters_than_pairwise(self):
        from repro.evaluation.metrics import pairwise_scores

        gold = {f"x{i}": "X" for i in range(20)} | {"y1": "Y", "y2": "Y"}
        predicted = [[f"x{i}" for i in range(10)], [f"x{i}" for i in range(10, 20)],
                     [["y1", "y2"][0]], ["y2"]]
        pairwise = pairwise_scores(predicted, gold)
        bcubed = bcubed_scores(predicted, gold)
        assert bcubed.recall > pairwise.recall

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=15))
    @settings(max_examples=40)
    def test_gold_partition_perfect(self, assignment):
        gold = {f"r{i}": f"e{e}" for i, e in enumerate(assignment)}
        clusters: dict[str, list[str]] = {}
        for ref, entity in gold.items():
            clusters.setdefault(entity, []).append(ref)
        scores = bcubed_scores(clusters.values(), gold)
        assert scores.precision == pytest.approx(1.0)
        assert scores.recall == pytest.approx(1.0)


class TestClusterScores:
    def test_perfect(self):
        scores = cluster_scores(PERFECT, GOLD)
        assert scores.precision == 1.0 and scores.recall == 1.0
        assert scores.exact_clusters == 3

    def test_partial(self):
        scores = cluster_scores([["a1", "a2", "a3"], ["b1"], ["b2"], ["c1"]], GOLD)
        assert scores.exact_clusters == 2  # the A cluster and {c1}
        assert scores.precision == pytest.approx(2 / 4)
        assert scores.recall == pytest.approx(2 / 3)


class TestVariationOfInformation:
    def test_identical_partitions(self):
        assert variation_of_information(PERFECT, GOLD) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_disagreement(self):
        assert variation_of_information([list(GOLD)], GOLD) > 0.0

    def test_bounded_by_log_n(self):
        vi = variation_of_information([[r] for r in GOLD], GOLD)
        assert vi <= math.log(len(GOLD)) + 1e-9

    @given(st.lists(st.integers(0, 3), min_size=2, max_size=12), st.integers(0, 999))
    @settings(max_examples=40)
    def test_non_negative(self, assignment, seed):
        import random

        gold = {f"r{i}": f"e{e}" for i, e in enumerate(assignment)}
        refs = list(gold)
        random.Random(seed).shuffle(refs)
        mid = max(1, len(refs) // 2)
        predicted = [refs[:mid], refs[mid:]]
        predicted = [cluster for cluster in predicted if cluster]
        assert variation_of_information(predicted, gold) >= 0.0
