"""Tests for Soundex and Metaphone."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.phonetic import metaphone, phonetic_similarity, soundex


class TestSoundex:
    @pytest.mark.parametrize(
        "word,code",
        [
            ("Robert", "R163"),
            ("Rupert", "R163"),
            ("Ashcraft", "A261"),
            ("Ashcroft", "A261"),
            ("Tymczak", "T522"),
            ("Pfister", "P236"),
            ("Honeyman", "H555"),
        ],
    )
    def test_reference_codes(self, word, code):
        assert soundex(word) == code

    def test_empty_and_nonalpha(self):
        assert soundex("") == ""
        assert soundex("123") == ""

    def test_typo_stability(self):
        assert soundex("stonebraker") == soundex("stonebracker")

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12))
    @settings(max_examples=60)
    def test_format(self, word):
        code = soundex(word)
        assert len(code) == 4
        assert code[0].isalpha() and code[0].isupper()
        assert all(ch.isdigit() for ch in code[1:])


class TestMetaphone:
    def test_stability_under_typos(self):
        assert metaphone("Stonebraker") == metaphone("Stonebracker")
        assert metaphone("Catherine") == metaphone("Katherine")

    def test_distinguishes(self):
        assert metaphone("Stonebraker") != metaphone("Wong")

    def test_prefix_rules(self):
        assert metaphone("Knight") == metaphone("Night")
        assert metaphone("Wright")[0] == "R"

    def test_empty(self):
        assert metaphone("") == ""

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", max_size=15))
    @settings(max_examples=60)
    def test_bounded_uppercase(self, word):
        code = metaphone(word)
        assert len(code) <= 6
        assert code == code.upper()


class TestPhoneticSimilarity:
    def test_metaphone_agreement(self):
        assert phonetic_similarity("Catherine", "Katherine") == 1.0

    def test_soundex_only(self):
        score = phonetic_similarity("Robert", "Rupert")
        assert score in (0.7, 1.0)

    def test_disagreement(self):
        assert phonetic_similarity("Wong", "Epstein") == 0.0

    def test_empty(self):
        assert phonetic_similarity("", "x") == 0.0
