"""Tests for TF-IDF corpus weighting and weight learning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.corpus import TfIdfCorpus
from repro.similarity.learning import (
    LabeledPair,
    PerceptronWeightLearner,
    fit_least_squares,
    project_to_simplex,
)


class TestTfIdfCorpus:
    def test_rare_tokens_weigh_more(self):
        corpus = TfIdfCorpus(
            ["data systems"] * 20 + ["stonebraker ingres"]
        )
        assert corpus.idf("stonebraker") > corpus.idf("data")

    def test_cosine_identical(self):
        corpus = TfIdfCorpus(["a b c", "b c d"])
        assert corpus.cosine("a b c", "a b c") == pytest.approx(1.0)

    def test_cosine_disjoint(self):
        corpus = TfIdfCorpus(["a b", "c d"])
        assert corpus.cosine("a b", "c d") == 0.0

    def test_rare_overlap_beats_common_overlap(self):
        documents = ["query processing systems"] * 30 + ["ingres postgres"]
        corpus = TfIdfCorpus(documents)
        rare = corpus.cosine("ingres query", "ingres processing")
        common = corpus.cosine("systems query", "systems processing")
        assert rare > common

    def test_soft_cosine_tolerates_typos(self):
        corpus = TfIdfCorpus(["stonebraker ingres", "query systems"])
        hard = corpus.cosine("stonebraker ingres", "stonbraker ingres")
        soft = corpus.soft_cosine("stonebraker ingres", "stonbraker ingres")
        assert soft > hard

    def test_empty_corpus_degrades_gracefully(self):
        corpus = TfIdfCorpus()
        assert corpus.cosine("a b", "a b") == pytest.approx(1.0)

    def test_incremental_add(self):
        corpus = TfIdfCorpus()
        assert len(corpus) == 0
        corpus.add("data systems")
        corpus.add("")  # ignored
        assert len(corpus) == 1

    @given(st.lists(st.text(alphabet="abc ", max_size=8), max_size=6))
    @settings(max_examples=25)
    def test_cosine_bounds(self, documents):
        corpus = TfIdfCorpus(documents)
        for left in documents:
            for right in documents:
                assert 0.0 <= corpus.cosine(left, right) <= 1.0 + 1e-9


class TestSimplexProjection:
    def test_already_feasible(self):
        weights = np.array([0.2, 0.3])
        assert np.allclose(project_to_simplex(weights), weights)

    def test_clips_negative(self):
        projected = project_to_simplex(np.array([-1.0, 0.5]))
        assert projected[0] == 0.0

    def test_projects_to_sum_one(self):
        projected = project_to_simplex(np.array([3.0, 1.0]))
        assert projected.sum() == pytest.approx(1.0)
        assert projected[0] > projected[1]

    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=6))
    @settings(max_examples=50)
    def test_feasibility(self, raw):
        projected = project_to_simplex(np.array(raw))
        assert (projected >= -1e-12).all()
        assert projected.sum() <= 1.0 + 1e-9


def _separable_pairs():
    """Matches have high channel-0 evidence, non-matches low."""
    pairs = []
    for value in (0.9, 0.95, 1.0, 0.85):
        pairs.append(LabeledPair((value, 0.2), True))
    for value in (0.1, 0.2, 0.0, 0.3):
        pairs.append(LabeledPair((value, 0.25), False))
    return pairs


class TestLeastSquares:
    def test_learns_discriminative_weight(self):
        weights = fit_least_squares(_separable_pairs())
        assert weights[0] > weights[1]

    def test_validates_input(self):
        with pytest.raises(ValueError):
            fit_least_squares([])
        with pytest.raises(ValueError):
            fit_least_squares(
                [LabeledPair((1.0,), True), LabeledPair((1.0, 0.5), False)]
            )

    def test_weights_feasible(self):
        weights = fit_least_squares(_separable_pairs())
        assert all(weight >= 0 for weight in weights)
        assert sum(weights) <= 1.0 + 1e-9


class TestPerceptron:
    def test_separates(self):
        learner = PerceptronWeightLearner(2)
        weights = learner.fit(_separable_pairs(), epochs=30)
        matches = [learner.score(pair.features) for pair in _separable_pairs() if pair.is_match]
        non_matches = [
            learner.score(pair.features) for pair in _separable_pairs() if not pair.is_match
        ]
        assert min(matches) > max(non_matches)
        assert all(weight >= 0 for weight in weights)

    def test_update_reports_movement(self):
        learner = PerceptronWeightLearner(2)
        moved = learner.update(LabeledPair((1.0, 0.0), True))
        assert isinstance(moved, bool)

    def test_validates(self):
        with pytest.raises(ValueError):
            PerceptronWeightLearner(0)
        learner = PerceptronWeightLearner(2)
        with pytest.raises(ValueError):
            learner.update(LabeledPair((1.0,), True))
