"""End-to-end observability through the CLI: `--log-json`, `--trace`,
`--metrics` and `--provenance` on real commands, plus the provenance-
replaying `explain`."""

import json

import pytest

from repro.cli import main
from repro.obs import (
    parse_prometheus,
    validate_chrome_trace,
    validate_event_log,
    validate_metrics_snapshot,
    validate_provenance_jsonl,
)


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("obs_cli") / "dataset"
    assert main(["generate", "B", str(directory), "--scale", "0.15"]) == 0
    return directory


@pytest.fixture(scope="module")
def observed_run(dataset_dir, tmp_path_factory):
    """One reconcile with every sink attached; returns the output dir."""
    out = tmp_path_factory.mktemp("obs_out")
    code = main([
        "reconcile", str(dataset_dir),
        "--output", str(out / "partition.json"),
        "--log-json", str(out / "events.jsonl"),
        "--log-level", "debug",
        "--trace", str(out / "trace.json"),
        "--metrics", str(out / "metrics.json"),
        "--metrics", str(out / "metrics.prom"),
        "--provenance", str(out / "prov.jsonl"),
    ])
    assert code == 0
    return out


class TestFlagsEndToEnd:
    def test_partition_identical_to_flagless_run(
        self, dataset_dir, observed_run, tmp_path
    ):
        plain = tmp_path / "plain.json"
        assert main(["reconcile", str(dataset_dir), "--output", str(plain)]) == 0
        assert plain.read_bytes() == (observed_run / "partition.json").read_bytes()

    def test_event_log_validates_and_covers_the_run(self, observed_run):
        path = observed_run / "events.jsonl"
        assert validate_event_log(path) > 0
        names = [
            json.loads(line)["event"] for line in path.read_text().splitlines()
        ]
        for expected in ("run_start", "build_start", "build_end",
                        "iterate_start", "iterate_end", "run_end"):
            assert expected in names, f"missing {expected}"
        # debug level lets per-decision events through
        assert "merge" in names

    def test_trace_is_valid_chrome_trace(self, observed_run):
        trace = json.loads((observed_run / "trace.json").read_text())
        assert validate_chrome_trace(trace) > 0
        names = {event["name"] for event in trace["traceEvents"]}
        assert "build" in names
        assert "iterate" in names

    def test_metrics_json_and_prometheus_agree(self, observed_run):
        snapshot = json.loads((observed_run / "metrics.json").read_text())
        assert validate_metrics_snapshot(snapshot) > 0
        samples = parse_prometheus((observed_run / "metrics.prom").read_text())
        merges = snapshot["repro_merges_total"]["value"]
        assert merges > 0
        assert samples["repro_merges_total"] == merges

    def test_provenance_jsonl_validates(self, observed_run):
        assert validate_provenance_jsonl(observed_run / "prov.jsonl") > 0

    def test_stats_rendering_unchanged(self, dataset_dir, capsys):
        assert main(["reconcile", str(dataset_dir), "--stats"]) == 0
        err = capsys.readouterr().err
        assert "engine stats:" in err
        assert "cache effectiveness:" in err
        assert "pair-score memo" in err


def _gold_entities(dataset_dir):
    """entity label -> list of reference ids, from the gold standard."""
    entities = {}
    for line in (dataset_dir / "gold.jsonl").read_text().splitlines():
        row = json.loads(line)
        entities.setdefault(row["entity"], []).append(row["id"])
    return entities


class TestExplainReplay:
    def test_explain_merged_pair_replays_record(self, dataset_dir, capsys):
        # Try gold duplicates until the engine actually merged one: the
        # replay marker proves the answer came from the audit log.
        replayed = False
        for members in _gold_entities(dataset_dir).values():
            if len(members) < 2:
                continue
            assert main(["explain", str(dataset_dir), members[0], members[1]]) == 0
            out = capsys.readouterr().out
            if "[replayed from decision record]" in out and "==" in out:
                replayed = True
                break
        assert replayed, "no merged pair replayed from the audit log"

    def test_explain_non_merged_pair_shows_last_decision(
        self, dataset_dir, observed_run, capsys
    ):
        # The audit log of the observed run knows which pairs the engine
        # examined but refused; explain must replay one of those.
        from repro.obs import ProvenanceLog

        prov = ProvenanceLog.from_jsonl(observed_run / "prov.jsonl")
        partition = json.loads((observed_run / "partition.json").read_text())
        cluster_of = {
            ref_id: (class_name, index)
            for class_name, clusters in partition.items()
            for index, cluster in enumerate(clusters)
            for ref_id in cluster
        }
        refused = next(
            pair for pair in prov.non_merged_pairs()
            if cluster_of.get(pair[0]) != cluster_of.get(pair[1])
        )
        assert main(["explain", str(dataset_dir), refused[0], refused[1]]) == 0
        out = capsys.readouterr().out
        assert "NOT reconciled" in out
        assert "last decision" in out
        assert "[replayed from decision record]" in out


@pytest.fixture(scope="module")
def run_dir(dataset_dir, tmp_path_factory):
    """One evaluate with --run-dir; returns the run directory."""
    directory = tmp_path_factory.mktemp("obs_run") / "run"
    assert main(["evaluate", str(dataset_dir), "--run-dir", str(directory)]) == 0
    return directory


class TestRunDir:
    def test_manifest_written_and_validates(self, run_dir):
        from repro.obs import load_manifest, validate_manifest

        assert (run_dir / "run.json").exists()
        manifest = load_manifest(run_dir)
        validate_manifest(manifest)
        assert manifest["run"]["dataset"] == "PIM B"
        assert manifest["quality"]
        assert len(manifest["convergence"]) >= 2

    def test_provenance_defaults_into_run_dir(self, run_dir):
        from repro.obs import load_manifest, resolve_artifact, validate_provenance_jsonl

        manifest = load_manifest(run_dir)
        provenance = resolve_artifact(manifest, run_dir, "provenance")
        assert provenance == run_dir / "provenance.jsonl"
        assert validate_provenance_jsonl(provenance) > 0

    def test_event_stream_defaults_into_run_dir(self, run_dir):
        from repro.obs import load_manifest, resolve_artifact, validate_event_log

        manifest = load_manifest(run_dir)
        events = resolve_artifact(manifest, run_dir, "events")
        assert events == run_dir / "events.jsonl"
        assert validate_event_log(events) > 0

    def test_watch_once_renders_the_recorded_run(self, run_dir, capsys):
        assert main(["watch", str(run_dir), "--once"]) == 0
        out = capsys.readouterr().out
        assert "run: PIM B (depgraph)" in out
        assert "result: completed" in out

    def test_profile_artifacts_land_in_run_dir(self, dataset_dir, tmp_path):
        from repro.obs import (
            load_manifest,
            parse_folded,
            resolve_artifact,
            validate_speedscope,
        )

        directory = tmp_path / "profiled"
        code = main([
            "evaluate", str(dataset_dir), "--run-dir", str(directory),
            "--profile",
        ])
        assert code == 0
        manifest = load_manifest(directory)
        folded = resolve_artifact(manifest, directory, "profile")
        speedscope = resolve_artifact(manifest, directory, "speedscope")
        assert folded == directory / "profile.folded" and folded.exists()
        assert speedscope == directory / "profile.speedscope.json"
        validate_speedscope(json.loads(speedscope.read_text()))
        # Folded export parses back (it may be empty on a very fast run;
        # the file itself must still exist and be well-formed).
        parse_folded(folded.read_text())

    def test_explain_resolves_provenance_from_manifest(
        self, dataset_dir, run_dir, capsys
    ):
        from repro.obs import ProvenanceLog

        prov = ProvenanceLog.from_jsonl(run_dir / "provenance.jsonl")
        pair = next(iter(prov.merged_pairs()))
        code = main([
            "explain", str(dataset_dir), pair[0], pair[1],
            "--run", str(run_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[replayed from decision record]" in out

    def test_explain_missing_run_provenance_exits_2(
        self, dataset_dir, tmp_path, capsys
    ):
        from repro.obs import build_manifest  # noqa: F401  (import check)

        bare = tmp_path / "bare"
        bare.mkdir()
        (bare / "run.json").write_text(
            json.dumps({"artifacts": {}}) + "\n"
        )
        code = main(["explain", str(dataset_dir), "x", "y", "--run", str(bare)])
        assert code == 2
        assert "provenance" in capsys.readouterr().err
