"""Tests for the synthetic world, corpus and noise generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.generator.bibtex import BibCorpusConfig, generate_bib_entries
from repro.datasets.generator.emails import EmailCorpusConfig, generate_messages
from repro.datasets.generator.names import (
    NAME_FORMATS,
    NamePool,
    format_name,
    typo,
)
from repro.datasets.generator.world import WorldConfig, build_world
from repro.similarity.strings import damerau_levenshtein_distance


class TestNamePool:
    def test_no_accidental_homonyms(self):
        pool = NamePool(random.Random(1), homonym_rate=0.0)
        drawn = [pool.draw() for _ in range(150)]
        combos = [(name.given, name.surname) for name in drawn]
        assert len(set(combos)) == len(combos)

    def test_homonym_rate_produces_twins(self):
        pool = NamePool(random.Random(2), homonym_rate=0.5)
        drawn = [pool.draw() for _ in range(80)]
        combos = [(name.given, name.surname) for name in drawn]
        assert len(set(combos)) < len(combos)

    def test_culture_mix(self):
        pool = NamePool(random.Random(3), culture_mix={"cn": 1.0})
        drawn = [pool.draw() for _ in range(30)]
        from repro.datasets.generator.names import _CN_SURNAME

        assert all(name.surname in _CN_SURNAME for name in drawn)

    def test_nicknames_consistent_with_table(self):
        from repro.similarity.nicknames import canonical_given_names

        pool = NamePool(random.Random(4))
        for _ in range(120):
            name = pool.draw()
            if name.nickname:
                assert name.given in canonical_given_names(name.nickname)


class TestFormatName:
    @pytest.fixture
    def name(self):
        pool = NamePool(random.Random(5), culture_mix={"us": 1.0}, middle_rate=1.0)
        return pool.draw()

    @pytest.mark.parametrize("style", NAME_FORMATS)
    def test_all_styles_render(self, name, style):
        rendered = format_name(name, style)
        assert rendered.strip()

    def test_specific_renderings(self):
        from repro.datasets.generator.names import PersonName

        name = PersonName(given="michael", middle="r", surname="stonebraker", nickname="mike")
        assert format_name(name, "first_last") == "Michael Stonebraker"
        assert format_name(name, "last_comma_initials") == "Stonebraker, M.R."
        assert format_name(name, "initial_last") == "M. Stonebraker"
        assert format_name(name, "nickname") == "mike"
        assert format_name(name, "nickname_last") == "Mike Stonebraker"

    def test_unknown_style_rejected(self, name):
        with pytest.raises(ValueError):
            format_name(name, "hexadecimal")


class TestTypo:
    @given(st.text(alphabet="abcdefgh", min_size=2, max_size=15), st.integers(0, 2**16))
    @settings(max_examples=60)
    def test_one_damerau_edit(self, text, seed):
        mutated = typo(text, random.Random(seed))
        assert damerau_levenshtein_distance(text, mutated) <= 1

    def test_no_letters_untouched(self):
        assert typo("123", random.Random(0)) == "123"


class TestWorld:
    @pytest.fixture(scope="class")
    def world(self):
        return build_world(WorldConfig(n_persons=60, n_papers=30), random.Random(7))

    def test_counts(self, world):
        non_lists = [p for p in world.persons.values() if not p.is_mailing_list]
        assert len(non_lists) == 60
        assert len(world.papers) == 30
        assert world.owner_id in world.persons

    def test_emails_unique(self, world):
        all_emails = [
            email for person in world.persons.values() for email in person.emails
        ]
        assert len(all_emails) == len(set(all_emails))

    def test_papers_authored_within_circles(self, world):
        circle_of = {}
        for circle in world.circles:
            for person_id in circle:
                circle_of[person_id] = id(circle)
        for paper in world.papers.values():
            circles = {circle_of[a] for a in paper.author_ids}
            assert len(circles) == 1

    def test_paper_authors_distinct(self, world):
        for paper in world.papers.values():
            assert len(set(paper.author_ids)) == len(paper.author_ids)

    def test_owner_name_change(self):
        config = WorldConfig(
            n_persons=20,
            n_papers=5,
            owner_changes_name=True,
            owner_changes_account_same_server=True,
        )
        world = build_world(config, random.Random(9))
        owner = world.owner
        assert owner.former_name is not None
        assert owner.former_name.surname != owner.name.surname
        # The new account lives on the same server as an old one.
        domains = [email.split("@", 1)[1] for email in owner.emails]
        assert len(domains) != len(set(domains))

    def test_determinism(self):
        config = WorldConfig(n_persons=25, n_papers=10)
        first = build_world(config, random.Random(42))
        second = build_world(config, random.Random(42))
        assert [p.emails for p in first.persons.values()] == [
            p.emails for p in second.persons.values()
        ]


class TestCorpora:
    @pytest.fixture(scope="class")
    def world(self):
        return build_world(WorldConfig(n_persons=40, n_papers=25), random.Random(11))

    def test_messages_have_sender_and_recipients(self, world):
        messages = generate_messages(
            world, EmailCorpusConfig(n_messages=80), random.Random(13)
        )
        assert messages
        for message in messages:
            roles = [p.role for p in message.participants]
            assert roles.count("from") == 1
            assert "to" in roles
            for participant in message.participants:
                assert "@" in participant.address

    def test_name_change_respected_in_time(self):
        config = WorldConfig(
            n_persons=10, n_papers=3, owner_changes_name=True
        )
        world = build_world(config, random.Random(15))
        messages = generate_messages(
            world, EmailCorpusConfig(n_messages=200, missing_display_rate=0.0,
                                     nickname_rate=0.0, typo_rate=0.0),
            random.Random(17),
        )
        old_surname = world.owner.former_name.surname
        new_surname = world.owner.name.surname
        for message in messages:
            for participant in message.participants:
                if participant.entity_id != world.owner_id:
                    continue
                display = (participant.display_name or "").lower()
                if message.time < 0.75 and old_surname in display:
                    assert new_surname not in display
                if message.time >= 0.85 and new_surname in display:
                    assert old_surname not in display

    def test_bib_entries_reference_world(self, world):
        entries = generate_bib_entries(
            world, BibCorpusConfig(n_files=3), random.Random(19)
        )
        assert entries
        for entry in entries:
            assert entry.paper_id in world.papers
            assert entry.venue_id in world.venues
            assert len(entry.author_names) == len(entry.author_ids)
            assert entry.author_names
        # The same paper appears in several files (the reconciliation
        # opportunity).
        papers_seen = [entry.paper_id for entry in entries]
        assert len(set(papers_seen)) < len(papers_seen)
