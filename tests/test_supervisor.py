"""Supervised execution layer: retry policy, chaos recovery, the
degradation ladder, poisoned-pair quarantine and its serial oracle.

The contract under test (see ``runtime/supervisor.py``): worker
crashes, hangs and comparator exceptions never escape, never leak
worker processes, and never change the computed partition — except
through *poisoned pairs*, whose effect is provably limited to scoring
exactly those pairs as no-merge (the suppression-oracle tests).
"""

import json
import multiprocessing
import random
import time
from dataclasses import replace

import pytest

from repro.core import EngineConfig, Reconciler
from repro.core.nodes import pair_key
from repro.datasets import generate_pim_dataset
from repro.domains import PimDomainModel
from repro.runtime import ChaosInjector, RetryPolicy, SupervisedScorer


def _no_live_children(timeout: float = 10.0) -> bool:
    """True once every worker process has been reaped."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return not multiprocessing.active_children()


def _chaos_engine(store, chaos, tmp_path, workers=2, **config_kw):
    config = replace(
        EngineConfig(),
        workers=workers,
        retry_backoff=0.0,
        poison_log=str(tmp_path / "poisoned_pairs.jsonl"),
        **config_kw,
    )
    engine = Reconciler(store, PimDomainModel(), config)
    engine.chaos = chaos
    return engine


class TestRetryPolicy:
    def test_backoff_is_deterministic_for_a_seed(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=0.4, jitter=0.5)
        first = [policy.backoff(n, random.Random(7)) for n in range(1, 6)]
        second = [policy.backoff(n, random.Random(7)) for n in range(1, 6)]
        assert first == second

    def test_backoff_grows_exponentially_within_bounds(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=0.4, jitter=0.5)
        rng = random.Random(3)
        for attempt in range(1, 8):
            base = min(0.4, 0.1 * 2 ** (attempt - 1))
            delay = policy.backoff(attempt, rng)
            assert base <= delay <= base * 1.5

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff_base=0.2, backoff_max=1.0, jitter=0.0)
        assert policy.backoff(1, random.Random(0)) == pytest.approx(0.2)
        assert policy.backoff(3, random.Random(0)) == pytest.approx(0.8)
        assert policy.backoff(30, random.Random(0)) == pytest.approx(1.0)


class TestCleanRuns:
    def test_supervised_run_matches_serial_with_zero_counters(self, tiny_pim_a):
        serial = Reconciler(tiny_pim_a.store, PimDomainModel()).run()
        config = replace(EngineConfig(), workers=2)
        engine = Reconciler(tiny_pim_a.store, PimDomainModel(), config)
        result = engine.run()
        assert result.partitions == serial.partitions
        stats = engine.stats
        assert stats.task_retries == 0
        assert stats.task_timeouts == 0
        assert stats.pool_rebuilds == 0
        assert stats.pairs_poisoned == 0
        assert _no_live_children()

    def test_rejects_unrebuildable_domain_and_tiny_pools(self):
        class LocalDomain(PimDomainModel):
            """Not importable by workers."""

        with pytest.raises(ValueError):
            SupervisedScorer(LocalDomain(), 2)
        with pytest.raises(ValueError):
            SupervisedScorer(PimDomainModel(), 1)


@pytest.mark.soak
class TestChaosRecovery:
    def test_single_worker_kill_recovers_identically(self, tiny_pim_a, tmp_path):
        serial = Reconciler(tiny_pim_a.store, PimDomainModel()).run()
        markers = tmp_path / "markers"
        markers.mkdir()
        chaos = ChaosInjector(kill_at_chunk=0, marker_dir=str(markers))
        engine = _chaos_engine(tiny_pim_a.store, chaos, tmp_path)
        result = engine.run()
        assert result.completed
        assert result.partitions == serial.partitions
        assert engine.stats.pool_rebuilds >= 1
        assert engine.stats.pairs_poisoned == 0
        assert not (tmp_path / "poisoned_pairs.jsonl").exists()
        assert _no_live_children()

    def test_persistent_kills_walk_ladder_to_serial(self, tiny_pim_a, tmp_path):
        serial = Reconciler(tiny_pim_a.store, PimDomainModel()).run()
        # No marker dir: every fresh worker dies on its first chunk, so
        # the only way out is the full ladder: 4 -> 2 -> serial.
        engine = _chaos_engine(
            tiny_pim_a.store, ChaosInjector(kill_at_chunk=0), tmp_path, workers=4
        )
        result = engine.run()
        assert result.completed
        assert result.partitions == serial.partitions
        kinds = {event.kind for event in engine.stats.degradations}
        assert "pool_rebuild" in kinds
        assert "parallel_fallback" in kinds
        assert engine.stats.parallel_workers == 1
        assert engine.stats.pairs_poisoned == 0
        assert _no_live_children()

    def test_hang_trips_deadline_and_recovers(self, tiny_pim_a, tmp_path):
        serial = Reconciler(tiny_pim_a.store, PimDomainModel()).run()
        markers = tmp_path / "markers"
        markers.mkdir()
        chaos = ChaosInjector(
            hang_at_chunk=0, hang_seconds=60.0, marker_dir=str(markers)
        )
        engine = _chaos_engine(
            tiny_pim_a.store, chaos, tmp_path, task_timeout=2.0
        )
        result = engine.run()
        assert result.completed
        assert result.partitions == serial.partitions
        assert engine.stats.task_timeouts >= 1
        assert engine.stats.pool_rebuilds >= 1
        assert engine.stats.pairs_poisoned == 0
        assert _no_live_children()


def _scoring_inputs(dataset):
    """Real scoring inputs (class, channel names, pairs, values) for the
    class with the most candidate pairs — what the engine would hand the
    scorer during its build."""
    engine = Reconciler(dataset.store, PimDomainModel())
    engine.build()
    best, pairs = None, []
    for class_name, index in engine._block_indexes.items():
        candidates = list(index.pairs())
        if len(candidates) > len(pairs):
            best, pairs = class_name, candidates
    channels = engine.enabled_atomic_channels(best)
    values = {}
    for pair in pairs:
        for element in pair:
            if element not in values:
                values[element] = dict(engine._element_values(element))
    return best, tuple(channel.name for channel in channels), pairs, values


class _RecordingTelemetry:
    def __init__(self):
        self.events = []

    def emit(self, level, event, **fields):
        self.events.append((level, event, fields))


class TestPoisoning:
    def test_bisection_isolates_exactly_the_poisoned_pair(
        self, tiny_pim_a, tmp_path
    ):
        class_name, channel_names, pairs, values = _scoring_inputs(tiny_pim_a)
        assert len(pairs) >= 4, "fixture too small to exercise bisection"
        target = pairs[len(pairs) // 2]
        telemetry = _RecordingTelemetry()
        poison_path = tmp_path / "poisoned_pairs.jsonl"
        scorer = SupervisedScorer(
            PimDomainModel(),
            2,
            RetryPolicy(max_retries=1, backoff_base=0.0, jitter=0.0),
            telemetry=telemetry,
            poison_path=poison_path,
            chaos=ChaosInjector(raise_pairs=(target,)),
        )
        with scorer:
            results = scorer.score(class_name, channel_names, pairs, values)
        assert len(results) == len(pairs)
        assert scorer.counters["pair_poisoned"] == 1
        assert results[pairs.index(target)] == []

        with SupervisedScorer(PimDomainModel(), 2) as clean:
            expected = clean.score(class_name, channel_names, pairs, values)
        for position, pair in enumerate(pairs):
            if pair != target:
                assert results[position] == expected[position], pair

        entries = [
            json.loads(line) for line in poison_path.read_text().splitlines()
        ]
        assert entries == scorer.poisoned
        assert entries[0]["pair"] == sorted(target)
        assert entries[0]["class"] == class_name
        assert "InjectedFault" in entries[0]["reason"]
        emitted = {event for _, event, _ in telemetry.events}
        assert "task_retry" in emitted
        assert "pair_poisoned" in emitted
        assert _no_live_children()

    def test_poisoned_run_matches_suppression_oracle(self, tmp_path):
        dataset = generate_pim_dataset("A", scale=0.15, seed=7)
        baseline = Reconciler(dataset.store, PimDomainModel())
        baseline_result = baseline.run()
        node_keys = {
            pair_key(node.left, node.right) for node in baseline.graph.nodes()
        }
        candidates = sorted(
            pair
            for index in baseline._block_indexes.values()
            for pair in index.pairs()
        )
        # Poison a pair that actually carries a node, so the suppression
        # is observable rather than vacuous.
        target = next(
            pair for pair in candidates if pair_key(*pair) in node_keys
        )

        engine = _chaos_engine(
            dataset.store, ChaosInjector(raise_pairs=(target,)), tmp_path
        )
        result = engine.run()
        assert result.completed
        assert engine.stats.pairs_poisoned == 1
        assert pair_key(*target) in engine.suppressed_pairs
        assert (tmp_path / "poisoned_pairs.jsonl").exists()

        oracle = Reconciler(dataset.store, PimDomainModel())
        oracle.suppressed_pairs = {pair_key(*target)}
        oracle_result = oracle.run()
        assert result.partitions == oracle_result.partitions
        # One poisoned pair degrades one decision, never the run: the
        # rest of the partition still matches the clean baseline's
        # clusters restricted to untouched elements.
        assert result.stop_reason == baseline_result.stop_reason == "converged"
        assert _no_live_children()


class TestMidBuildPoolFailure:
    def test_broken_pool_mid_build_degrades_instead_of_raising(
        self, tiny_pim_a, monkeypatch
    ):
        from concurrent.futures.process import BrokenProcessPool

        class ExplodingScorer:
            def __init__(self):
                self.shutdowns = 0

            def score(self, *args, **kwargs):
                raise BrokenProcessPool("worker died mid-build")

            def shutdown(self):
                self.shutdowns += 1

        stub = ExplodingScorer()
        config = replace(EngineConfig(), workers=2)
        engine = Reconciler(tiny_pim_a.store, PimDomainModel(), config)
        monkeypatch.setattr(engine, "_make_scorer", lambda: stub)
        result = engine.run()
        assert result.completed
        kinds = {event.kind for event in engine.stats.degradations}
        assert "parallel_fallback" in kinds
        assert engine.stats.parallel_workers == 1
        assert stub.shutdowns >= 1
        baseline = Reconciler(tiny_pim_a.store, PimDomainModel()).run()
        assert result.partitions == baseline.partitions
