"""Tests for EngineConfig helpers, modes, and ReconciliationResult."""

import pytest

from repro.core import (
    FULL,
    MERGE,
    PROPAGATION,
    TRADITIONAL,
    EngineConfig,
    Reconciler,
    ReferenceStore,
)
from repro.core.model import Mode
from repro.domains import PimDomainModel

from .conftest import example1_references


class TestModes:
    def test_mode_constants(self):
        assert TRADITIONAL == Mode("Traditional", propagate=False, enrich=False)
        assert FULL.propagate and FULL.enrich
        assert PROPAGATION.propagate and not PROPAGATION.enrich
        assert MERGE.enrich and not MERGE.propagate

    def test_with_mode(self):
        config = EngineConfig().with_mode(TRADITIONAL)
        assert not config.propagate and not config.enrich
        # Other fields preserved.
        assert config.constraints


class TestEngineConfig:
    def test_defaults_are_full_depgraph(self):
        config = EngineConfig()
        assert config.propagate and config.enrich and config.constraints
        assert config.premerge_keys
        assert config.channel_enabled("anything")
        assert config.strong_enabled("A", "B")
        assert config.weak_enabled("Person")

    def test_filters(self):
        config = EngineConfig(
            disabled_channels=frozenset({"x"}),
            disabled_strong=frozenset({("A", "B")}),
            disabled_weak=frozenset({"C"}),
        )
        assert not config.channel_enabled("x")
        assert config.channel_enabled("y")
        assert not config.strong_enabled("A", "B")
        assert config.strong_enabled("B", "A")
        assert not config.weak_enabled("C")

    def test_frozen(self):
        with pytest.raises(Exception):
            EngineConfig().propagate = False


class TestResult:
    @pytest.fixture(scope="class")
    def result(self):
        domain = PimDomainModel()
        store = ReferenceStore(domain.schema, example1_references())
        return Reconciler(store, domain, EngineConfig()).run()

    def test_entity_of_stable_within_cluster(self, result):
        assert result.entity_of("p2") == result.entity_of("p9")
        assert result.entity_of("p2") != result.entity_of("p3")

    def test_matched_pairs(self, result):
        pairs = result.matched_pairs("Person")
        assert ("p2", "p5") in pairs or ("p5", "p2") in pairs
        # C(4,2) + C(3,2) + C(2,2... )
        assert len(pairs) == 6 + 3 + 1

    def test_partition_count(self, result):
        assert result.partition_count("Person") == 3
        assert result.partition_count("Article") == 1
        assert result.partition_count("Venue") == 1

    def test_clusters_sorted(self, result):
        for cluster in result.clusters("Person"):
            assert cluster == sorted(cluster)
