"""Shared fixtures: the paper's Example 1 and small generated datasets."""

import pytest

from repro.core import Reference, ReferenceStore
from repro.datasets import generate_cora_dataset, generate_pim_dataset
from repro.datasets.cora import CoraConfig
from repro.domains import PimDomainModel


def example1_references() -> list[Reference]:
    """The references of Figure 1(b), verbatim."""
    return [
        Reference(
            "a1",
            "Article",
            {
                "title": (
                    "Distributed query processing in a relational data base system",
                ),
                "pages": ("169-180",),
                "authoredBy": ("p1", "p2", "p3"),
                "publishedIn": ("c1",),
            },
        ),
        Reference(
            "a2",
            "Article",
            {
                "title": (
                    "Distributed query processing in a relational data base system",
                ),
                "pages": ("169-180",),
                "authoredBy": ("p4", "p5", "p6"),
                "publishedIn": ("c2",),
            },
        ),
        Reference("p1", "Person", {"name": ("Robert S. Epstein",), "coAuthor": ("p2", "p3")}),
        Reference("p2", "Person", {"name": ("Michael Stonebraker",), "coAuthor": ("p1", "p3")}),
        Reference("p3", "Person", {"name": ("Eugene Wong",), "coAuthor": ("p1", "p2")}),
        Reference("p4", "Person", {"name": ("Epstein, R.S.",), "coAuthor": ("p5", "p6")}),
        Reference("p5", "Person", {"name": ("Stonebraker, M.",), "coAuthor": ("p4", "p6")}),
        Reference("p6", "Person", {"name": ("Wong, E.",), "coAuthor": ("p4", "p5")}),
        Reference(
            "p7",
            "Person",
            {
                "name": ("Eugene Wong",),
                "email": ("eugene@berkeley.edu",),
                "emailContact": ("p8",),
            },
        ),
        Reference(
            "p8",
            "Person",
            {"email": ("stonebraker@csail.mit.edu",), "emailContact": ("p7",)},
        ),
        Reference(
            "p9",
            "Person",
            {"name": ("mike",), "email": ("stonebraker@csail.mit.edu",)},
        ),
        Reference(
            "c1",
            "Venue",
            {
                "name": ("ACM Conference on Management of Data",),
                "year": ("1978",),
                "location": ("Austin, Texas",),
            },
        ),
        Reference("c2", "Venue", {"name": ("ACM SIGMOD",), "year": ("1978",)}),
    ]


@pytest.fixture
def example1_store() -> ReferenceStore:
    return ReferenceStore(PimDomainModel().schema, example1_references())


@pytest.fixture(scope="session")
def tiny_pim_a():
    """A small PIM A instance shared across integration tests."""
    return generate_pim_dataset("A", scale=0.35)


@pytest.fixture(scope="session")
def tiny_pim_d():
    return generate_pim_dataset("D", scale=0.35)


@pytest.fixture(scope="session")
def tiny_cora():
    return generate_cora_dataset(
        CoraConfig(n_papers=40, n_citations=380, n_authors=80, n_venues=14)
    )
