"""Tests for the extractor and the benchmark datasets' gold standards."""

import random

import pytest

from repro.datasets.extract import extract_bib_references, extract_email_references
from repro.datasets.generator.bibtex import BibCorpusConfig, generate_bib_entries
from repro.datasets.generator.emails import (
    EmailCorpusConfig,
    Message,
    Participant,
    generate_messages,
)
from repro.datasets.generator.world import WorldConfig, build_world
from repro.datasets.gold import GoldStandard


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(n_persons=30, n_papers=15), random.Random(3))


class TestEmailExtraction:
    def test_dedup_by_presentation_and_bucket(self):
        participants = (
            Participant("e1", "Ann Smith", "ann@x.edu", "from"),
            Participant("e2", None, "bob@y.edu", "to"),
        )
        messages = [
            Message("m0", 0.01, participants),
            Message("m1", 0.02, participants),  # identical, same bucket
            Message("m2", 0.90, participants),  # identical, later bucket
        ]
        gold = GoldStandard()
        refs = extract_email_references(messages, gold)
        ann_refs = [r for r in refs if gold.entity_of[r.ref_id] == "e1"]
        assert len(ann_refs) == 2  # bucket 0 and bucket 3

    def test_contact_links_accumulate(self):
        messages = [
            Message(
                "m0",
                0.0,
                (
                    Participant("e1", "Ann", "ann@x.edu", "from"),
                    Participant("e2", None, "bob@y.edu", "to"),
                ),
            ),
            Message(
                "m1",
                0.01,
                (
                    Participant("e1", "Ann", "ann@x.edu", "from"),
                    Participant("e3", None, "carl@z.edu", "to"),
                ),
            ),
        ]
        gold = GoldStandard()
        refs = extract_email_references(messages, gold)
        ann = next(r for r in refs if gold.entity_of[r.ref_id] == "e1")
        assert len(ann.get("emailContact")) == 2

    def test_sender_and_recipient_linked_both_ways(self):
        messages = [
            Message(
                "m0",
                0.0,
                (
                    Participant("e1", "Ann", "ann@x.edu", "from"),
                    Participant("e2", "Bob", "bob@y.edu", "to"),
                ),
            )
        ]
        gold = GoldStandard()
        refs = extract_email_references(messages, gold)
        by_entity = {gold.entity_of[r.ref_id]: r for r in refs}
        assert by_entity["e2"].ref_id in by_entity["e1"].get("emailContact")
        assert by_entity["e1"].ref_id in by_entity["e2"].get("emailContact")

    def test_full_corpus_extracts_cleanly(self, world):
        messages = generate_messages(
            world, EmailCorpusConfig(n_messages=100), random.Random(5)
        )
        gold = GoldStandard()
        refs = extract_email_references(messages, gold)
        assert refs
        for ref in refs:
            assert ref.class_name == "Person"
            assert ref.get("email")
            assert gold.source_of[ref.ref_id] == "email"


class TestBibExtraction:
    def test_entry_produces_article_persons_venue(self, world):
        entries = generate_bib_entries(
            world, BibCorpusConfig(n_files=1, entries_per_file=(3, 3)), random.Random(7)
        )
        gold = GoldStandard()
        refs = extract_bib_references(entries, gold)
        classes = [r.class_name for r in refs]
        assert classes.count("Article") == len(entries)
        assert classes.count("Venue") == len(entries)
        assert classes.count("Person") == sum(len(e.author_names) for e in entries)

    def test_article_links_resolve(self, world):
        entries = generate_bib_entries(
            world, BibCorpusConfig(n_files=2), random.Random(9)
        )
        gold = GoldStandard()
        refs = extract_bib_references(entries, gold)
        by_id = {r.ref_id: r for r in refs}
        for ref in refs:
            if ref.class_name != "Article":
                continue
            for author in ref.get("authoredBy"):
                assert by_id[author].class_name == "Person"
            (venue,) = ref.get("publishedIn")
            assert by_id[venue].class_name == "Venue"

    def test_coauthor_links_exclude_self(self, world):
        entries = generate_bib_entries(
            world, BibCorpusConfig(n_files=1), random.Random(11)
        )
        gold = GoldStandard()
        refs = extract_bib_references(entries, gold)
        for ref in refs:
            if ref.class_name == "Person":
                assert ref.ref_id not in ref.get("coAuthor")


class TestGoldStandard:
    def test_duplicate_rejected(self):
        gold = GoldStandard()
        gold.add("r1", "e1", "Person", "email")
        with pytest.raises(ValueError):
            gold.add("r1", "e1", "Person", "email")

    def test_views(self):
        gold = GoldStandard()
        gold.add("r1", "e1", "Person", "email")
        gold.add("r2", "e1", "Person", "bibtex")
        gold.add("r3", "e2", "Venue", "bibtex")
        assert gold.refs_of_class("Person") == ["r1", "r2"]
        assert gold.refs_of_class("Person", source="email") == ["r1"]
        assert gold.clusters("Person") == [["r1", "r2"]]
        assert gold.clusters("Person", restrict_to=["r1"]) == [["r1"]]
        assert gold.entity_count("Person") == 1
        assert gold.total_entity_count() == 2
        assert gold.reference_count() == 3
        assert gold.reference_count("Venue") == 1


class TestBenchmarkDatasets:
    def test_pim_dataset_consistent(self, tiny_pim_a):
        tiny_pim_a.store.validate()
        gold = tiny_pim_a.gold
        for ref in tiny_pim_a.store:
            assert ref.ref_id in gold.entity_of
            assert gold.class_of[ref.ref_id] == ref.class_name
        summary = tiny_pim_a.summary()
        assert summary["references"] == len(tiny_pim_a.store)

    def test_pim_owner_is_most_popular(self, tiny_pim_a):
        from collections import Counter

        counts = Counter(
            tiny_pim_a.gold.entity_of[r] for r in tiny_pim_a.gold.refs_of_class("Person")
        )
        owner_count = counts[tiny_pim_a.world.owner_id]
        assert owner_count == max(counts.values())

    def test_pim_d_owner_changed_name(self, tiny_pim_d):
        assert tiny_pim_d.world.owner.former_name is not None

    def test_cora_dataset_consistent(self, tiny_cora):
        tiny_cora.store.validate()
        assert tiny_cora.gold.entity_count("Article") <= 40
        ratio = tiny_cora.summary()["ratio"]
        assert ratio > 5

    def test_generation_deterministic(self):
        from repro.datasets import generate_pim_dataset

        first = generate_pim_dataset("C", scale=0.2)
        second = generate_pim_dataset("C", scale=0.2)
        assert first.gold.entity_of == second.gold.entity_of
        assert [r.ref_id for r in first.store] == [r.ref_id for r in second.store]
