"""Differential test pack: sharded reconciliation ≡ serial.

The contract under test (see DESIGN.md "Sharded execution"): for every
dataset and every shard count, ``run_sharded`` merged back together is
**byte-identical** to the whole-graph run — same partition JSON, same
canonical provenance multiset, same outcome counters — across the
default component planner, forced split plans (cross-shard fixpoint),
worker processes, and crash/resume inside a shard.
"""

import pytest

from repro.core import Reconciler, ReferenceStore
from repro.core.model import EngineConfig
from repro.datasets import generate_cora_dataset, generate_pim_dataset
from repro.datasets.cora import CoraConfig
from repro.domains import CoraDomainModel, PimDomainModel
from repro.obs.manifest import _COUNTER_FIELDS, partition_digest
from repro.obs.provenance import ProvenanceLog
from repro.obs.telemetry import Telemetry
from repro.shard import (
    canonical_provenance,
    merge_provenance,
    merged_result,
    plan_shards,
    run_sharded,
)

SHARD_COUNTS = (1, 2, 4)


def _domain_for(name: str):
    return CoraDomainModel() if name == "cora" else PimDomainModel()


@pytest.fixture(scope="module")
def worlds():
    """name -> (dataset, domain); small scales keep the matrix quick."""
    built = {}
    for name in ("A", "B", "C", "D"):
        built[name] = (generate_pim_dataset(name, scale=0.15), PimDomainModel())
    built["cora"] = (
        generate_cora_dataset(
            CoraConfig(n_papers=25, n_citations=200, n_authors=50, n_venues=10)
        ),
        CoraDomainModel(),
    )
    return built


@pytest.fixture(scope="module")
def serial_runs(worlds):
    """name -> (result, canonical provenance, stats) of the serial run."""
    runs = {}
    for name, (dataset, domain) in worlds.items():
        telemetry = Telemetry(provenance=ProvenanceLog())
        engine = Reconciler(dataset.store, domain, EngineConfig(), telemetry=telemetry)
        result = engine.run()
        runs[name] = (
            result,
            canonical_provenance(
                [record.to_dict() for record in telemetry.provenance.records]
            ),
            engine.stats,
        )
    return runs


def _assert_equivalent(sharded, serial_result, serial_prov, serial_stats):
    result = merged_result(sharded)
    assert result.partitions == serial_result.partitions
    assert partition_digest(result.partitions) == partition_digest(
        serial_result.partitions
    )
    assert canonical_provenance(merge_provenance(sharded)) == serial_prov
    for name in _COUNTER_FIELDS:
        assert getattr(result.stats, name) == getattr(serial_stats, name), name
    return result


class TestComponentPlanner:
    @pytest.mark.parametrize("name", ["A", "B", "C", "D", "cora"])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_sharded_equals_serial(self, worlds, serial_runs, name, shards):
        dataset, domain = worlds[name]
        sharded = run_sharded(dataset.store, domain, EngineConfig(), shards=shards)
        _assert_equivalent(sharded, *serial_runs[name])
        # The default planner is component-closed: fixpoint fast path.
        assert sharded.plan.component_closed
        assert sharded.fixpoint.rounds == 1
        assert sharded.fixpoint.messages == 0

    def test_plan_is_deterministic(self, worlds):
        dataset, domain = worlds["B"]
        plans = [plan_shards(dataset.store, domain, shards=3) for _ in range(2)]
        assert plans[0].assignment == plans[1].assignment
        assert plans[0].members == plans[1].members
        assert plans[0].weights == plans[1].weights

    def test_every_reference_assigned_once(self, worlds):
        dataset, domain = worlds["A"]
        plan = plan_shards(dataset.store, domain, shards=3)
        flattened = [ref_id for members in plan.members for ref_id in members]
        assert sorted(flattened) == sorted(r.ref_id for r in dataset.store)
        assert sum(plan.reference_counts) == len(dataset.store)


class TestWorkerMatrix:
    """Sharding crossed with the intra-shard parallel knobs."""

    @pytest.mark.parametrize(
        "overrides",
        [{"workers": 2}, {"iterate_workers": 2, "iterate_batch": 16}],
        ids=["build-workers", "iterate-workers"],
    )
    def test_parallel_inside_shards(self, worlds, serial_runs, overrides):
        from dataclasses import replace

        dataset, domain = worlds["A"]
        config = replace(EngineConfig(), **overrides)
        sharded = run_sharded(dataset.store, domain, config, shards=2)
        _assert_equivalent(sharded, *serial_runs["A"])

    def test_shard_worker_processes(self, worlds, serial_runs):
        dataset, domain = worlds["A"]
        sharded = run_sharded(
            dataset.store, domain, EngineConfig(), shards=2, shard_workers=2
        )
        result = _assert_equivalent(sharded, *serial_runs["A"])
        assert not result.degraded
        assert all(o.peak_rss_kb > 0 for o in sharded.outcomes)


class TestCrashResume:
    def test_crash_mid_shard_then_resume(self, worlds, serial_runs, tmp_path):
        dataset, domain = worlds["A"]

        class CrashAtStep(RuntimeError):
            pass

        def crash_hook(engine, step):
            if step == 30:
                raise CrashAtStep(f"injected at step {step}")

        with pytest.raises(CrashAtStep):
            run_sharded(
                dataset.store,
                domain,
                EngineConfig(),
                shards=2,
                checkpoint_dir=tmp_path,
                checkpoint_every=10,
                step_hooks={0: crash_hook},
            )
        assert (tmp_path / "shard-0" / "checkpoint.json").exists()
        sharded = run_sharded(
            dataset.store,
            domain,
            EngineConfig(),
            shards=2,
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert sharded.outcomes[0].resumed
        serial_result, serial_prov, serial_stats = serial_runs["A"]
        result = merged_result(sharded)
        assert result.partitions == serial_result.partitions
        for name in _COUNTER_FIELDS:
            assert getattr(result.stats, name) == getattr(serial_stats, name), name
        # The crashed attempt's decisions persist next to the shard
        # checkpoint; steps between the last checkpoint and the crash
        # re-execute on resume, so (exactly like a serial resumed run's
        # append-continued provenance.jsonl) identical duplicate
        # records may appear — compare decision *sets*.
        assert set(canonical_provenance(merge_provenance(sharded))) == set(
            serial_prov
        )


class TestSplitPlanFixpoint:
    """Force the single interaction component apart: the cross-shard
    fixpoint must repair the cut back to the serial result."""

    def _split_plan(self, dataset, domain, shards=2):
        refs = sorted(r.ref_id for r in dataset.store)
        assignment = {rid: i % shards for i, rid in enumerate(refs)}
        # Enemy constraints must stay co-shard (merges are monotone; a
        # blinded shard merging an enemy pair is unrecoverable).
        for left, right in domain.distinct_pairs(dataset.store):
            assignment[right] = assignment[left]
        return plan_shards(
            dataset.store, domain, shards=shards, assignment=assignment
        )

    def test_fixpoint_repairs_cut(self, worlds, serial_runs):
        dataset, domain = worlds["A"]
        plan = self._split_plan(dataset, domain)
        assert not plan.component_closed
        assert plan.split_components >= 1
        assert len(plan.cut_pairs) > 0
        sharded = run_sharded(
            dataset.store, domain, EngineConfig(), shards=2, plan=plan
        )
        assert sharded.fixpoint.ran
        assert sharded.fixpoint.rounds >= 2
        assert sharded.fixpoint.messages > 0
        assert sharded.fixpoint.boundary_pairs == len(plan.cut_pairs)
        _assert_equivalent(sharded, *serial_runs["A"])

    def test_fixpoint_terminates_with_round_count(self, worlds):
        dataset, domain = worlds["D"]
        plan = self._split_plan(dataset, domain)
        sharded = run_sharded(
            dataset.store, domain, EngineConfig(), shards=2, plan=plan
        )
        # Termination is the loop exiting at all; the recorded rounds
        # include the final pass that committed nothing new.
        assert sharded.fixpoint.describe()["rounds"] == sharded.fixpoint.rounds
        assert sharded.fixpoint.rounds >= 2

    def test_assignment_must_cover_store(self, worlds):
        dataset, domain = worlds["A"]
        with pytest.raises(ValueError, match="misses"):
            plan_shards(dataset.store, domain, shards=2, assignment={"x": 0})


class TestMultiComponentBalance:
    """Disjoint person families in one store: the planner must see one
    component per family and spread them over the shards. PIM/Cora
    worlds are a single interaction component (shared surnames, venue
    normalisation and associations connect everything — the paper's
    premise), so multi-component packing needs content-disjoint input."""

    @staticmethod
    def _family_store(families: int, size: int) -> ReferenceStore:
        from repro.core import Reference

        store = ReferenceStore(PimDomainModel().schema)
        for f in range(families):
            # Letter-indexed names: digits would split into shared
            # tokens ("Zblat0ov" -> surname token "ov" in every family)
            # and re-connect the components through one block.
            tag = chr(ord("a") + f)
            surname = f"Zblat{tag}ov"
            for member in range(size):
                store.add(
                    Reference(
                        f"fam{tag}:p{member}",
                        "Person",
                        {
                            "name": (f"Qir{tag}ian {surname}",),
                            "email": (
                                f"qir{tag}ian.m{member}@fam{tag}.example",
                            ),
                        },
                    )
                )
        store.validate()
        return store

    def test_components_pack_into_balanced_shards(self):
        domain = PimDomainModel()
        store = self._family_store(families=6, size=5)
        plan = plan_shards(store, domain, shards=2)
        assert plan.component_count == 6
        assert all(count > 0 for count in plan.reference_counts)
        assert plan.component_closed
        # Equal-weight components pack evenly: Gini stays near zero.
        assert plan.gini < 0.2

        serial = Reconciler(store, domain, EngineConfig()).run()
        sharded = run_sharded(store, domain, EngineConfig(), shards=2)
        assert merged_result(sharded).partitions == serial.partitions


class TestEngineInvariants:
    """Invariants the merged run must satisfy regardless of plan."""

    def _check(self, store, domain, partitions):
        for left, right in domain.distinct_pairs(store):
            for clusters in partitions.values():
                for cluster in clusters:
                    assert not (left in cluster and right in cluster), (
                        f"enemies {left}/{right} co-clustered"
                    )
        for class_name, clusters in partitions.items():
            seen = set()
            for cluster in clusters:
                assert cluster == sorted(cluster)
                for ref_id in cluster:
                    assert ref_id not in seen, f"{ref_id} in two clusters"
                    seen.add(ref_id)
            assert seen == {
                r.ref_id for r in store.of_class(class_name)
            }

    @pytest.mark.parametrize("shards", [2, 4])
    def test_merged_partition_invariants(self, worlds, shards):
        dataset, domain = worlds["B"]
        sharded = run_sharded(dataset.store, domain, EngineConfig(), shards=shards)
        self._check(dataset.store, domain, merged_result(sharded).partitions)


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


class TestPropertySharding:
    """Property over synthetic worlds: sharded ≡ serial, plus the
    engine invariants, for arbitrary seeds/scales/shard counts."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        name=st.sampled_from(["A", "D"]),
        seed=st.integers(min_value=0, max_value=2**16),
        scale=st.sampled_from([0.08, 0.12]),
        shards=st.integers(min_value=2, max_value=5),
    )
    def test_sharded_equals_serial(self, name, seed, scale, shards):
        dataset = generate_pim_dataset(name, seed=seed, scale=scale)
        domain = PimDomainModel()
        serial = Reconciler(dataset.store, domain, EngineConfig()).run()
        sharded = run_sharded(dataset.store, domain, EngineConfig(), shards=shards)
        result = merged_result(sharded)
        assert result.partitions == serial.partitions
        TestEngineInvariants()._check(dataset.store, domain, result.partitions)
