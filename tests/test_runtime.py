"""Tests for the fault-tolerant runtime: error taxonomy, run guards,
checkpoint/resume, graceful degradation and the fault injectors."""

import dataclasses
import json

import pytest

from repro.core import EngineConfig, Reconciler, ReferenceStore
from repro.core.queue import ActiveQueue
from repro.domains import PimDomainModel
from repro.runtime import (
    BudgetExceeded,
    CheckpointError,
    Checkpointer,
    CrashAtStep,
    DataError,
    DeadlineExceeded,
    DegradationEvent,
    GuardTripped,
    InjectedFault,
    QueueEmpty,
    ReproError,
    ResilientReconciler,
    RunGuard,
    corrupt_checkpoint,
    inject_malformed_lines,
    load_checkpoint,
    save_checkpoint,
)

from .conftest import example1_references


def _engine(config=None) -> Reconciler:
    domain = PimDomainModel()
    store = ReferenceStore(domain.schema, example1_references())
    return Reconciler(store, domain, config)


class TestErrorTaxonomy:
    def test_hierarchy(self):
        for error in (DataError, QueueEmpty, CheckpointError, InjectedFault,
                      GuardTripped):
            assert issubclass(error, ReproError)
        assert issubclass(BudgetExceeded, GuardTripped)
        assert issubclass(DeadlineExceeded, GuardTripped)

    def test_data_error_carries_location(self):
        error = DataError("missing key 'id'", path="refs.jsonl", line=17)
        assert error.path == "refs.jsonl"
        assert error.line == 17
        assert "refs.jsonl:17" in str(error)
        assert "missing key 'id'" in str(error)


class TestActiveQueueEmpty:
    def test_pop_empty_raises_typed(self):
        with pytest.raises(QueueEmpty):
            ActiveQueue().pop()

    def test_pop_skips_stale_keys(self):
        queue = ActiveQueue([("a", "b"), ("c", "d")])
        queue.discard(("a", "b"))
        # Live length excludes the stale deque entry.
        assert len(queue) == 1
        assert queue.pop() == ("c", "d")
        with pytest.raises(QueueEmpty):
            queue.pop()

    def test_only_stale_keys_is_falsy(self):
        queue = ActiveQueue([("a", "b")])
        queue.discard(("a", "b"))
        assert not queue

    def test_snapshot_round_trip(self):
        queue = ActiveQueue([("a", "b"), ("c", "d"), ("e", "f")])
        queue.discard(("c", "d"))
        queue.push_front(("x", "y"))
        restored = ActiveQueue.from_snapshot(queue.snapshot())
        assert restored.pop() == ("x", "y")
        assert restored.pop() == ("a", "b")
        assert restored.pop() == ("e", "f")
        assert restored.pushed_front == queue.pushed_front
        assert restored.pushed_back == queue.pushed_back


class TestRunGuard:
    def test_deadline_trips_with_injected_clock(self):
        cell = [0.0]
        guard = RunGuard(deadline_seconds=5.0, clock=lambda: cell[0])
        guard.start()
        guard.check(recomputations=1)
        cell[0] = 6.0
        with pytest.raises(DeadlineExceeded) as excinfo:
            guard.check(recomputations=2)
        event = excinfo.value.event
        assert event.kind == "deadline"
        assert event.recomputations == 2
        assert guard.events == [event]

    def test_budget_trips(self):
        guard = RunGuard(max_recomputations=10)
        guard.check(recomputations=9)
        with pytest.raises(BudgetExceeded) as excinfo:
            guard.check(recomputations=10)
        assert excinfo.value.event.kind == "budget"

    def test_queue_and_graph_ceilings(self):
        guard = RunGuard(max_queue_size=5)
        with pytest.raises(BudgetExceeded) as excinfo:
            guard.check(queue_size=6)
        assert excinfo.value.event.kind == "queue_ceiling"
        guard = RunGuard(max_graph_nodes=100)
        with pytest.raises(BudgetExceeded) as excinfo:
            guard.check(graph_nodes=101)
        assert excinfo.value.event.kind == "graph_ceiling"

    def test_unlimited_guard_never_trips(self):
        guard = RunGuard()
        guard.check(recomputations=10**9, queue_size=10**9, graph_nodes=10**9)
        assert guard.events == []


class TestEngineWithGuard:
    def test_converged_run_is_completed(self):
        result = _engine().run()
        assert result.completed
        assert result.stop_reason == "converged"

    def test_config_budget_sets_stop_reason(self):
        # The satellite fix: the max_recomputations break is no longer
        # silent — the result says the run was truncated and why.
        result = _engine(EngineConfig(max_recomputations=3)).run()
        assert not result.completed
        assert result.stop_reason == "budget"
        assert any(event.kind == "budget" for event in result.degradations)
        assert result.degraded

    def test_guard_deadline_degrades_gracefully(self):
        result = _engine().run(guard=RunGuard(deadline_seconds=0.0))
        assert not result.completed
        assert result.stop_reason == "deadline"
        assert any(event.kind == "deadline" for event in result.degradations)
        # The partial partition still covers every reference.
        refs = [ref for cluster in result.clusters("Person") for ref in cluster]
        assert sorted(refs) == [f"p{i}" for i in range(1, 10)]

    def test_raise_on_trip(self):
        engine = _engine()
        with pytest.raises(DeadlineExceeded):
            engine.run(guard=RunGuard(deadline_seconds=0.0), raise_on_trip=True)
        # State is finalized, so the partial result is still available.
        assert engine.partial_result().stop_reason == "deadline"

    def test_guard_budget_result_matches_config_budget(self):
        via_guard = _engine().run(guard=RunGuard(max_recomputations=3))
        via_config = _engine(EngineConfig(max_recomputations=3)).run()
        assert via_guard.partitions == via_config.partitions
        assert via_guard.stop_reason == via_config.stop_reason == "budget"


class TestCheckpoint:
    def test_save_load_round_trip(self, tmp_path):
        engine = _engine()
        engine.build()
        path = save_checkpoint(engine, tmp_path / "ckpt.json")
        payload = load_checkpoint(path)
        assert payload["built"] is True
        assert payload["queue"]["entries"]

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        engine = _engine()
        engine.build()
        save_checkpoint(engine, tmp_path / "ckpt.json")
        save_checkpoint(engine, tmp_path / "ckpt.json")  # overwrite path
        leftovers = [p for p in tmp_path.iterdir() if p.name != "ckpt.json"]
        assert leftovers == []

    def test_corrupt_checkpoint_is_refused(self, tmp_path):
        engine = _engine()
        engine.build()
        path = save_checkpoint(engine, tmp_path / "ckpt.json")
        corrupt_checkpoint(path, seed=3)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_truncated_checkpoint_is_refused(self, tmp_path):
        engine = _engine()
        engine.build()
        path = save_checkpoint(engine, tmp_path / "ckpt.json")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_checkpoint_is_refused(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.json")

    def test_config_mismatch_is_refused(self, tmp_path):
        engine = _engine()
        engine.build()
        path = save_checkpoint(engine, tmp_path / "ckpt.json")
        domain = PimDomainModel()
        store = ReferenceStore(domain.schema, example1_references())
        with pytest.raises(CheckpointError):
            Reconciler.resume(
                path, store=store, domain=domain,
                config=EngineConfig(enrich=False),
            )

    def test_crash_resume_reaches_identical_partition(self, tmp_path):
        domain = PimDomainModel()
        uninterrupted = _engine()
        expected = uninterrupted.run()

        engine = _engine()
        checkpointer = Checkpointer(tmp_path, every=1)
        with pytest.raises(InjectedFault):
            engine.run(checkpointer=checkpointer, step_hook=CrashAtStep(5))
        store = ReferenceStore(domain.schema, example1_references())
        resumed = Reconciler.resume(checkpointer.path, store=store, domain=domain)
        result = resumed.run()
        assert result.partitions == expected.partitions
        assert resumed.stats.merges == uninterrupted.stats.merges
        assert resumed.stats.recomputations == uninterrupted.stats.recomputations

    def test_crash_before_first_step_still_resumable(self, tmp_path):
        domain = PimDomainModel()
        expected = _engine().run()
        engine = _engine()
        checkpointer = Checkpointer(tmp_path, every=100)
        with pytest.raises(InjectedFault):
            engine.run(checkpointer=checkpointer, step_hook=CrashAtStep(0))
        store = ReferenceStore(domain.schema, example1_references())
        resumed = Reconciler.resume(checkpointer.path, store=store, domain=domain)
        assert resumed.run().partitions == expected.partitions


class TestResilientReconciler:
    def _store(self):
        domain = PimDomainModel()
        return ReferenceStore(domain.schema, example1_references()), domain

    def test_partial_fallback_returns_truncated_partition(self):
        store, domain = self._store()
        wrapper = ResilientReconciler(
            store, domain, guard=RunGuard(deadline_seconds=0.0)
        )
        result = wrapper.run()
        assert not result.completed
        assert result.stop_reason == "deadline"
        refs = [ref for cluster in result.clusters("Person") for ref in cluster]
        assert sorted(refs) == [f"p{i}" for i in range(1, 10)]

    def test_indepdec_fallback_substitutes_unresolved_classes(self):
        from repro.baselines import indepdec_config

        store, domain = self._store()
        wrapper = ResilientReconciler(
            store, domain,
            guard=RunGuard(deadline_seconds=0.0),
            fallback="indepdec",
        )
        result = wrapper.run()
        assert not result.completed
        assert any(event.kind == "fallback" for event in result.degradations)
        baseline = Reconciler(
            self._store()[0], domain, indepdec_config(domain)
        ).run()
        # Classes with queued work were re-resolved by the baseline.
        fallback_event = next(
            event for event in result.degradations if event.kind == "fallback"
        )
        assert "InDepDec" in fallback_event.detail
        for class_name in ("Person",):
            assert result.partitions[class_name] == baseline.partitions[class_name]

    def test_untripped_guard_returns_converged_run(self):
        store, domain = self._store()
        wrapper = ResilientReconciler(store, domain, guard=RunGuard())
        result = wrapper.run()
        assert result.completed
        assert result.stop_reason == "converged"

    def test_unknown_fallback_rejected(self):
        store, domain = self._store()
        with pytest.raises(ValueError):
            ResilientReconciler(store, domain, fallback="wishful")


class TestFaultInjectors:
    def test_crash_at_step_fires_once(self):
        hook = CrashAtStep(0)
        with pytest.raises(InjectedFault):
            hook(None, 0)
        hook(None, 1)  # second call is a no-op

    def test_inject_malformed_lines_deterministic(self, tmp_path):
        path = tmp_path / "refs.jsonl"
        records = [json.dumps({"id": f"r{i}", "class": "Person", "values": {}})
                   for i in range(50)]
        path.write_text("\n".join(records) + "\n")
        lines_a = inject_malformed_lines(path, rate=0.1, seed=4)
        path.write_text("\n".join(records) + "\n")
        lines_b = inject_malformed_lines(path, rate=0.1, seed=4)
        assert lines_a == lines_b
        assert lines_a  # at least one line corrupted

    def test_degradation_event_is_serialisable(self):
        event = DegradationEvent(kind="budget", detail="x", recomputations=3)
        round_tripped = DegradationEvent(**dataclasses.asdict(event))
        assert round_tripped == event
