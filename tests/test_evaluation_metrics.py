"""Tests for the pairwise metrics, including hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    entities_with_false_positives,
    pairwise_scores,
    partition_count,
    partition_reduction,
)


GOLD = {"a1": "A", "a2": "A", "a3": "A", "b1": "B", "b2": "B", "c1": "C"}


class TestPairwiseScores:
    def test_perfect(self):
        scores = pairwise_scores([["a1", "a2", "a3"], ["b1", "b2"], ["c1"]], GOLD)
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f_measure == 1.0

    def test_under_merged(self):
        scores = pairwise_scores(
            [["a1", "a2"], ["a3"], ["b1", "b2"], ["c1"]], GOLD
        )
        assert scores.precision == 1.0
        assert scores.recall == pytest.approx(2 / 4)

    def test_over_merged(self):
        scores = pairwise_scores([["a1", "a2", "a3", "b1", "b2", "c1"]], GOLD)
        assert scores.recall == 1.0
        assert scores.precision == pytest.approx(4 / 15)

    def test_popular_entities_weigh_more(self):
        """§5.2: splitting a big cluster costs more than a small one."""
        split_big = pairwise_scores(
            [["a1", "a2"], ["a3"], ["b1", "b2"], ["c1"]], GOLD
        )
        split_small = pairwise_scores(
            [["a1", "a2", "a3"], ["b1"], ["b2"], ["c1"]], GOLD
        )
        assert split_big.recall < split_small.recall

    def test_restrict_to(self):
        scores = pairwise_scores(
            [["a1", "a2", "b1"], ["a3"]], GOLD, restrict_to=["a1", "a2", "a3"]
        )
        assert scores.precision == 1.0
        assert scores.recall == pytest.approx(1 / 3)

    def test_unknown_refs_ignored(self):
        scores = pairwise_scores([["a1", "a2", "ghost"]], GOLD)
        assert scores.precision == 1.0

    def test_duplicate_ref_rejected(self):
        with pytest.raises(ValueError):
            pairwise_scores([["a1"], ["a1", "a2"]], GOLD)

    def test_singletons_only(self):
        scores = pairwise_scores([[r] for r in GOLD], GOLD)
        assert scores.precision == 1.0  # vacuous
        assert scores.recall == 0.0

    @given(
        st.lists(st.integers(0, 4), min_size=1, max_size=20).map(
            lambda assignment: {
                f"r{i}": f"e{entity}" for i, entity in enumerate(assignment)
            }
        )
    )
    @settings(max_examples=50)
    def test_gold_partition_scores_perfectly(self, gold):
        clusters: dict[str, list[str]] = {}
        for ref, entity in gold.items():
            clusters.setdefault(entity, []).append(ref)
        scores = pairwise_scores(clusters.values(), gold)
        assert scores.precision == 1.0
        assert scores.recall == 1.0

    @given(
        st.lists(st.integers(0, 3), min_size=2, max_size=16),
        st.integers(0, 2**16),
    )
    @settings(max_examples=50)
    def test_bounds_for_random_partitions(self, assignment, seed):
        import random

        gold = {f"r{i}": f"e{e}" for i, e in enumerate(assignment)}
        refs = list(gold)
        rng = random.Random(seed)
        rng.shuffle(refs)
        # Random contiguous chunks as a predicted partition.
        clusters, cursor = [], 0
        while cursor < len(refs):
            size = rng.randint(1, 4)
            clusters.append(refs[cursor : cursor + size])
            cursor += size
        scores = pairwise_scores(clusters, gold)
        assert 0.0 <= scores.precision <= 1.0
        assert 0.0 <= scores.recall <= 1.0
        assert 0.0 <= scores.f_measure <= 1.0


class TestPartitionCount:
    def test_counts_nonempty(self):
        assert partition_count([["a"], ["b", "c"], []]) == 2

    def test_restriction(self):
        assert partition_count([["a"], ["b", "c"]], restrict_to=["b"]) == 1


class TestEntitiesWithFalsePositives:
    def test_clean_partition(self):
        assert entities_with_false_positives([["a1", "a2"], ["b1"]], GOLD) == 0

    def test_mixed_cluster_implicates_both(self):
        assert entities_with_false_positives([["a1", "b1"], ["a2"]], GOLD) == 2

    def test_three_way(self):
        assert entities_with_false_positives([["a1", "b1", "c1"]], GOLD) == 3


class TestPartitionReduction:
    def test_paper_formula(self):
        # Paper: from 3159 to 1873 partitions against 1750 entities.
        reduction = partition_reduction(3159, 1873, 1750)
        assert reduction == pytest.approx(91.3, abs=0.05)

    def test_no_gap(self):
        assert partition_reduction(100, 90, 100) == 0.0

    def test_full_reduction(self):
        assert partition_reduction(200, 100, 100) == pytest.approx(100.0)
