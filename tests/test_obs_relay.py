"""Cross-process telemetry relay: worker lanes in the parent's sinks.

The contract mirrors the single-process telemetry contract: attaching
the relay (which rides along automatically whenever telemetry is
active on a parallel engine) never changes results, and the parent's
trace gains real per-pid lanes with named processes that validate
against the Chrome trace schema.
"""

import json

import pytest

from repro.core import EngineConfig, Reconciler
from repro.datasets import generate_pim_dataset
from repro.domains import PimDomainModel
from repro.obs import (
    Telemetry,
    TelemetryRelay,
    WorkerTelemetry,
    trace_process_names,
    validate_chrome_trace,
    validate_event_log,
)
from repro.obs.relay import WORKER_METRIC_HELP
from repro.runtime import Checkpointer, CrashAtStep, InjectedFault
from repro.similarity import clear_similarity_caches


class TestWorkerTelemetry:
    def test_drain_returns_payload_and_clears(self):
        recorder = WorkerTelemetry("scoring worker")
        recorder.add_span("score_chunk", 1.0, 0.5, pairs=3)
        recorder.count("repro_worker_chunks_total")
        recorder.observe("repro_worker_chunk_seconds", 0.5)
        recorder.emit("warning", "something", detail="x")
        payload = recorder.drain()
        assert payload["process_name"] == "scoring worker"
        assert payload["pid"] == recorder.pid
        assert payload["spans"][0][0] == "score_chunk"
        assert payload["counters"] == {"repro_worker_chunks_total": 1}
        assert payload["observations"] == {"repro_worker_chunk_seconds": [0.5]}
        assert payload["events"][0][1] == "something"
        # Buffers are deltas: a second drain with nothing new is None.
        assert recorder.drain() is None

    def test_zero_counts_are_not_shipped(self):
        recorder = WorkerTelemetry("scoring worker")
        recorder.count("repro_worker_pairs_scored_total", 0)
        assert recorder.drain() is None

    def test_pair_stats_fold_into_counters(self):
        recorder = WorkerTelemetry("scoring worker")
        stats = recorder.pair_stats()
        stats.pair_memo_hits += 3
        stats.pair_memo_misses += 2
        stats.prefilter_skips += 1
        recorder.absorb_pair_stats(stats)
        payload = recorder.drain()
        assert payload["counters"] == {
            "repro_worker_pair_memo_hits_total": 3,
            "repro_worker_pair_memo_misses_total": 2,
            "repro_worker_prefilter_skips_total": 1,
        }


class TestTelemetryRelay:
    def _telemetry(self, tmp_path):
        return Telemetry.enabled(
            log_path=tmp_path / "events.jsonl",
            log_level="debug",
            trace=True,
            metrics=True,
        )

    def test_absorb_builds_named_foreign_lanes(self, tmp_path):
        telemetry = self._telemetry(tmp_path)
        relay = TelemetryRelay.for_telemetry(telemetry)
        recorder = WorkerTelemetry("scoring worker")
        recorder.pid, recorder.tid = 4242, 4243  # a genuinely foreign lane
        recorder.add_span("score_chunk", telemetry.tracer.epoch, 0.25, pairs=7)
        recorder.count("repro_worker_chunks_total")
        recorder.observe("repro_worker_chunk_seconds", 0.25)
        recorder.emit("warning", "worker_event", detail="d")
        relay.absorb(recorder.drain())
        telemetry.close()

        trace = telemetry.tracer.chrome_trace()
        validate_chrome_trace(trace)
        names = trace_process_names(trace)
        assert names[4242] == "scoring worker"
        assert len(names) == 2  # engine lane + the worker lane
        foreign = [e for e in trace["traceEvents"] if e.get("pid") == 4242]
        assert any(e["ph"] == "X" and e["name"] == "score_chunk" for e in foreign)
        assert "repro_worker_chunks_total" in telemetry.metrics
        events = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        worker_events = [e for e in events if e["event"] == "worker_event"]
        assert worker_events and worker_events[0]["pid"] == 4242

    def test_span_before_parent_epoch_clamps_to_zero(self, tmp_path):
        telemetry = self._telemetry(tmp_path)
        relay = TelemetryRelay.for_telemetry(telemetry)
        recorder = WorkerTelemetry("scoring worker")
        recorder.pid = 777
        recorder.add_span("early", telemetry.tracer.epoch - 100.0, 0.1)
        relay.absorb(recorder.drain())
        telemetry.close()
        trace = telemetry.tracer.chrome_trace()
        validate_chrome_trace(trace)  # would fail on a negative ts
        early = [e for e in trace["traceEvents"] if e.get("name") == "early"]
        assert early[0]["ts"] == 0

    def test_lane_death_is_attributed_to_the_lane(self, tmp_path):
        telemetry = self._telemetry(tmp_path)
        relay = TelemetryRelay.for_telemetry(telemetry)
        relay.lane_died(999, "task timeout")
        telemetry.close()
        trace = telemetry.tracer.chrome_trace()
        deaths = [e for e in trace["traceEvents"] if e.get("name") == "lane_died"]
        assert deaths and deaths[0]["pid"] == 999
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["repro_lane_deaths_total"]["value"] == 1
        assert relay.summary()["lane_deaths"][0]["pid"] == 999

    def test_provenance_only_telemetry_gets_no_relay(self):
        from repro.obs import ProvenanceLog

        telemetry = Telemetry(provenance=ProvenanceLog())
        assert TelemetryRelay.for_telemetry(telemetry) is None
        assert TelemetryRelay.for_telemetry(None) is None


class TestParallelRunEndToEnd:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_pim_dataset("B", scale=0.15)

    @pytest.fixture(scope="class")
    def baseline(self, dataset):
        clear_similarity_caches()
        engine = Reconciler(dataset.store, PimDomainModel(), EngineConfig())
        return engine.run()

    @pytest.fixture(scope="class")
    def observed(self, dataset, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("relay_run")
        clear_similarity_caches()
        telemetry = Telemetry.enabled(
            log_path=tmp_path / "events.jsonl",
            log_level="debug",
            trace=True,
            metrics=True,
        )
        config = EngineConfig(workers=2, iterate_workers=2, iterate_batch=16)
        engine = Reconciler(
            dataset.store, PimDomainModel(), config, telemetry=telemetry
        )
        result = engine.run()
        telemetry.close()
        return engine, result, telemetry

    def test_partitions_identical_with_relay_attached(self, baseline, observed):
        _, result, _ = observed
        assert result.partitions == baseline.partitions

    def test_trace_has_multiple_named_pid_lanes(self, observed):
        _, _, telemetry = observed
        trace = telemetry.tracer.chrome_trace()
        validate_chrome_trace(trace)
        names = trace_process_names(trace)
        assert len(names) >= 2
        assert "repro engine" in names.values()
        assert any(name != "repro engine" for name in names.values())
        # Foreign spans actually landed on foreign lanes.
        engine_pid = telemetry.tracer.pid
        assert any(
            event.get("ph") == "X" and event["pid"] != engine_pid
            for event in trace["traceEvents"]
        )

    def test_worker_counters_fold_into_parent_metrics(self, observed):
        _, _, telemetry = observed
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["repro_worker_chunks_total"]["value"] > 0
        assert snapshot["repro_iterate_child_chunks_total"]["value"] > 0
        assert snapshot["repro_worker_chunk_seconds"]["count"] > 0
        assert snapshot["repro_supervised_chunk_seconds"]["count"] > 0
        for name in snapshot:
            if name in WORKER_METRIC_HELP:
                assert snapshot[name]["help"] == WORKER_METRIC_HELP[name]

    def test_relay_summary_reaches_the_engine(self, observed):
        engine, _, _ = observed
        summary = engine._relay.summary()
        assert summary["lane_count"] >= 2
        assert summary["lane_deaths"] == []
        assert summary["counters"]["repro_worker_chunks_total"] > 0


def test_queue_depth_histogram_samples_each_chunk(monkeypatch, tiny_pim_a):
    import repro.core.engine as engine_module

    monkeypatch.setattr(engine_module, "_ITERATE_CHUNK", 5)
    clear_similarity_caches()
    baseline = Reconciler(
        tiny_pim_a.store, PimDomainModel(), EngineConfig()
    ).run()
    clear_similarity_caches()
    telemetry = Telemetry.enabled(metrics=True)
    engine = Reconciler(
        tiny_pim_a.store, PimDomainModel(), EngineConfig(), telemetry=telemetry
    )
    result = engine.run()
    snapshot = telemetry.metrics.snapshot()
    assert snapshot["repro_iterate_queue_depth"]["count"] > 0
    assert result.partitions == baseline.partitions


def test_resume_append_continues_relay_telemetry(tmp_path):
    dataset = generate_pim_dataset("A", scale=0.15)
    log_path = tmp_path / "events.jsonl"
    config = EngineConfig(workers=2)
    checkpointer = Checkpointer(tmp_path, every=1)

    clear_similarity_caches()
    telemetry = Telemetry.enabled(
        log_path=log_path, log_level="debug", trace=True, metrics=True
    )
    engine = Reconciler(
        dataset.store, PimDomainModel(), config, telemetry=telemetry
    )
    with pytest.raises(InjectedFault):
        engine.run(checkpointer=checkpointer, step_hook=CrashAtStep(5))
    telemetry.close()
    assert engine._relay is not None  # the parallel build used the relay
    events_before_crash = validate_event_log(log_path)
    assert events_before_crash > 0

    resumed = Reconciler.resume(
        checkpointer.path,
        store=dataset.store,
        domain=PimDomainModel(),
        config=config,
        telemetry=Telemetry.enabled(
            log_path=log_path, log_level="debug", trace=True, metrics=True
        ),
    )
    result = resumed.run()
    resumed.telemetry.close()

    clear_similarity_caches()
    uninterrupted = Reconciler(
        dataset.store, PimDomainModel(), EngineConfig()
    ).run()
    assert result.partitions == uninterrupted.partitions
    # The event log append-continued across the crash.
    assert validate_event_log(log_path) > events_before_crash
