"""Tests for the InDepDec baseline config and the ablation grid."""

from repro.baselines import (
    ARTICLE,
    ATTR_WISE,
    CONTACT,
    EVIDENCE_LEVELS,
    MODES,
    NAME_EMAIL,
    ablation_config,
    indepdec_config,
)
from repro.core import FULL, MERGE, PROPAGATION, TRADITIONAL
from repro.domains import CoraDomainModel, PimDomainModel


class TestIndepdecConfig:
    def test_disables_everything_contextual(self):
        config = indepdec_config(PimDomainModel())
        assert not config.propagate
        assert not config.enrich
        assert not config.constraints
        assert "name_email" in config.disabled_channels
        assert "authors" in config.disabled_channels
        assert "venue" in config.disabled_channels
        assert ("Article", "Person") in config.disabled_strong
        assert ("Article", "Venue") in config.disabled_strong
        assert "Person" in config.disabled_weak

    def test_keys_still_active(self):
        config = indepdec_config(PimDomainModel())
        assert config.premerge_keys
        assert config.channel_enabled("email")
        assert config.channel_enabled("name")

    def test_cora_variant(self):
        config = indepdec_config(CoraDomainModel())
        assert ("Article", "Venue") in config.disabled_strong
        assert "Person" in config.disabled_weak


class TestAblationGrid:
    def test_grid_dimensions(self):
        assert len(EVIDENCE_LEVELS) == 4
        assert len(MODES) == 4
        assert [m.name for m in MODES] == [
            "Traditional",
            "Propagation",
            "Merge",
            "Full",
        ]
        assert [e.name for e in EVIDENCE_LEVELS] == [
            "Attr-wise",
            "Name&Email",
            "Article",
            "Contact",
        ]

    def test_cumulative_evidence(self):
        attr = ablation_config(ATTR_WISE, FULL)
        assert not attr.channel_enabled("name_email")
        assert not attr.strong_enabled("Article", "Person")
        assert not attr.weak_enabled("Person")

        name_email = ablation_config(NAME_EMAIL, FULL)
        assert name_email.channel_enabled("name_email")
        assert not name_email.strong_enabled("Article", "Person")

        article = ablation_config(ARTICLE, FULL)
        assert article.strong_enabled("Article", "Person")
        assert not article.weak_enabled("Person")

        contact = ablation_config(CONTACT, FULL)
        assert contact.channel_enabled("name_email")
        assert contact.strong_enabled("Article", "Person")
        assert contact.weak_enabled("Person")

    def test_modes_set_flags(self):
        assert ablation_config(CONTACT, TRADITIONAL).propagate is False
        assert ablation_config(CONTACT, TRADITIONAL).enrich is False
        assert ablation_config(CONTACT, PROPAGATION).propagate is True
        assert ablation_config(CONTACT, PROPAGATION).enrich is False
        assert ablation_config(CONTACT, MERGE).propagate is False
        assert ablation_config(CONTACT, MERGE).enrich is True
        assert ablation_config(CONTACT, FULL).propagate is True
        assert ablation_config(CONTACT, FULL).enrich is True

    def test_article_venue_machinery_stays_on(self):
        """The grid varies Person evidence only."""
        config = ablation_config(ATTR_WISE, TRADITIONAL)
        assert config.strong_enabled("Article", "Venue")
        assert config.channel_enabled("authors")
        assert config.channel_enabled("title")

    def test_constraints_toggle(self):
        assert ablation_config(CONTACT, FULL).constraints
        assert not ablation_config(CONTACT, FULL, constraints=False).constraints
