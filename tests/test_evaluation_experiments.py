"""Smoke and shape tests for the experiment drivers (tiny scale).

The full-shape assertions live in the benchmarks; here we verify that
every driver runs, returns well-formed rows, and that the renderers
produce the paper-style tables.
"""

import pytest

from repro.evaluation import (
    figure6_series,
    render_figure6,
    render_table1,
    render_table2,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    table1_dataset_properties,
    table2_class_averages,
    table4_per_dataset,
    table5_ablation_grid,
    table6_constraints,
    table7_cora,
)

SCALE = 0.25


@pytest.fixture(scope="module")
def grid():
    return table5_ablation_grid(SCALE)


class TestDrivers:
    def test_table1(self):
        rows = table1_dataset_properties(SCALE)
        assert [row["dataset"] for row in rows] == [
            "PIM A",
            "PIM B",
            "PIM C",
            "PIM D",
            "Cora",
        ]
        rendered = render_table1(rows)
        assert "27367" in rendered  # paper numbers shown side by side

    def test_table2(self):
        rows = table2_class_averages(SCALE)
        assert {row["class"] for row in rows} == {"Person", "Article", "Venue"}
        for row in rows:
            for key, value in row.items():
                if key != "class":
                    assert 0.0 <= value <= 1.0
        assert "DepGraph" in render_table2(rows)

    def test_table4(self):
        rows = table4_per_dataset(SCALE)
        assert [row["dataset"] for row in rows] == ["A", "B", "C", "D"]
        for row in rows:
            assert row["DepGraph_partitions"] >= row["entities"] * 0.5
        assert "per-dataset" in render_table4(rows)

    def test_table5_grid_complete(self, grid):
        assert len(grid["cells"]) == 16
        assert grid["entities"] > 0
        for count in grid["cells"].values():
            assert grid["entities"] <= count <= grid["references"]
        rendered = render_table5(grid)
        assert "Traditional" in rendered and "Contact" in rendered

    def test_figure6_series_match_grid(self, grid):
        series = figure6_series(SCALE)
        assert len(series) == 4
        for entry in series:
            for evidence_name, count in entry["points"]:
                assert grid["cells"][(entry["mode"], evidence_name)] == count
        assert "Figure 6" in render_figure6(series)

    def test_table6(self):
        rows = table6_constraints(SCALE)
        assert [row["method"] for row in rows] == ["DepGraph", "Non-Constraint"]
        for row in rows:
            assert row["graph_nodes"] > 0
        assert "constraints" in render_table6(rows)

    @pytest.mark.slow
    def test_table7_uses_full_cora(self):
        rows = table7_cora()
        assert [row["class"] for row in rows] == ["Person", "Article", "Venue"]
        rendered = render_table7(rows)
        assert "Cora" in rendered
        assert "Parag" in rendered  # cited comparison systems listed
