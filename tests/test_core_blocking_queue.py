"""Tests for the blocking index and the active-node queue."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocking import BlockingIndex, candidate_pairs
from repro.core.nodes import pair_key
from repro.core.queue import ActiveQueue
from repro.core.references import Reference
from repro.domains import PIM_SCHEMA


class TestBlockingIndex:
    def test_pairs_within_buckets(self):
        index = BlockingIndex()
        index.add("r1", ["k1"])
        index.add("r2", ["k1", "k2"])
        index.add("r3", ["k2"])
        pairs = list(index.pairs())
        assert ("r1", "r2") in pairs
        assert ("r2", "r3") in pairs
        assert ("r1", "r3") not in pairs

    def test_pairs_deduplicated(self):
        index = BlockingIndex()
        index.add("r1", ["k1", "k2"])
        index.add("r2", ["k1", "k2"])
        assert list(index.pairs()) == [("r1", "r2")]

    def test_oversized_blocks_skipped(self):
        index = BlockingIndex(max_block_size=2)
        for i in range(5):
            index.add(f"r{i}", ["huge"])
        index.add("a", ["small"])
        index.add("b", ["small"])
        pairs = list(index.pairs())
        assert pairs == [("a", "b")]
        assert index.oversized_blocks == 1

    def test_oversized_counter_stable_across_reiterations(self):
        # Regression: oversized_blocks used to be incremented per
        # pairs() call, so iterating twice doubled the count.
        index = BlockingIndex(max_block_size=2)
        for i in range(5):
            index.add(f"r{i}", ["huge"])
        list(index.pairs())
        list(index.pairs())
        list(index.pairs())
        assert index.oversized_blocks == 1

    def test_oversized_counts_distinct_blocks(self):
        index = BlockingIndex(max_block_size=1)
        for i in range(3):
            index.add(f"r{i}", ["big1", "big2"])
        list(index.pairs())
        assert index.oversized_blocks == 2

    def test_duplicate_adds_deduplicated(self):
        index = BlockingIndex()
        index.add("r1", ["k1", "k1"])
        index.add("r1", ["k1"])
        index.add("r2", ["k1"])
        assert list(index.pairs()) == [("r1", "r2")]

    def test_add_and_pairs_incremental(self):
        index = BlockingIndex()
        index.add("r1", ["k1"])
        index.add("r2", ["k2"])
        new_pairs = index.add_and_pairs("r3", ["k1", "k2"])
        assert new_pairs == [pair_key("r1", "r3"), pair_key("r2", "r3")]

    def test_candidate_pairs_helper(self):
        refs = [
            Reference("r1", "Person", {"name": ("A",)}),
            Reference("r2", "Person", {"name": ("A",)}),
        ]
        pairs = candidate_pairs(refs, lambda ref: ref.get("name"))
        assert pairs == [("r1", "r2")]

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 20),
                st.lists(st.sampled_from("abcde"), min_size=1, max_size=3),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=40)
    def test_each_pair_emitted_once(self, entries):
        index = BlockingIndex()
        for i, (ref, keys) in enumerate(entries):
            index.add(f"r{ref}", keys)
        pairs = list(index.pairs())
        assert len(pairs) == len(set(pairs))
        for left, right in pairs:
            assert left < right


class TestActiveQueue:
    def test_fifo(self):
        queue = ActiveQueue([("a", "b"), ("c", "d")])
        assert queue.pop() == ("a", "b")
        assert queue.pop() == ("c", "d")
        assert not queue

    def test_front_push(self):
        queue = ActiveQueue([("a", "b")])
        queue.push_front(("x", "y"))
        assert queue.pop() == ("x", "y")

    def test_membership_no_duplicates(self):
        queue = ActiveQueue()
        assert queue.push_back(("a", "b"))
        assert not queue.push_back(("a", "b"))
        assert not queue.push_front(("a", "b"))
        assert len(queue) == 1

    def test_discard_then_requeue(self):
        queue = ActiveQueue([("a", "b")])
        queue.discard(("a", "b"))
        assert ("a", "b") not in queue
        # A stale entry remains in the deque but membership is gone;
        # re-adding works and the stale pop is distinguishable via
        # is_live / node status in the engine.
        assert queue.push_back(("a", "b"))

    def test_counters(self):
        queue = ActiveQueue()
        queue.push_back(("a", "b"))
        queue.push_front(("c", "d"))
        assert queue.pushed_back == 1
        assert queue.pushed_front == 1


def test_pim_blocking_keys_bridge_names_and_emails():
    from repro.domains import PimDomainModel

    domain = PimDomainModel()
    named = Reference("r1", "Person", {"name": ("Stonebraker, M.",)})
    mailed = Reference("r2", "Person", {"email": ("stonebraker@csail.mit.edu",)})
    keys_named = set(domain.blocking_keys(named))
    keys_mailed = set(domain.blocking_keys(mailed))
    assert keys_named & keys_mailed, "cross-attribute blocking must co-block"


def test_pim_blocking_keys_nicknames():
    from repro.domains import PimDomainModel

    domain = PimDomainModel()
    nick = Reference("r1", "Person", {"name": ("mike",)})
    full = Reference("r2", "Person", {"name": ("Michael Stonebraker",)})
    assert set(domain.blocking_keys(nick)) & set(domain.blocking_keys(full))
