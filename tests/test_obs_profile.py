"""The sampling profiler: capture, exports, and schema validation."""

import json
import time

import pytest

from repro.obs import SamplingProfiler, parse_folded, top_frames_from_folded
from repro.obs.schemas import SchemaError, validate_speedscope


def _busy_for(seconds: float) -> int:
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestSampling:
    def test_samples_the_calling_thread(self):
        with SamplingProfiler(interval=0.001) as profiler:
            _busy_for(0.2)
        assert profiler.sample_count > 0
        assert profiler.samples
        # The busy frame shows up in at least one sampled stack.
        assert any(
            any(label.startswith("_busy_for") for label in stack)
            for stack in profiler.samples
        )

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)

    def test_double_start_rejected(self):
        profiler = SamplingProfiler(interval=0.05).start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(interval=0.05).start()
        profiler.stop()
        profiler.stop()


class TestExports:
    @pytest.fixture()
    def profiler(self):
        profiler = SamplingProfiler(interval=0.01)
        # Deterministic synthetic samples — the export paths should not
        # depend on scheduler luck.
        profiler.samples = {
            ("main", "run", "score"): 5,
            ("main", "run", "merge"): 3,
            ("main", "flush"): 2,
        }
        profiler.sample_count = 10
        return profiler

    def test_folded_round_trips_through_parse(self, profiler, tmp_path):
        path = profiler.write_folded(tmp_path / "profile.folded")
        assert parse_folded(path.read_text()) == {
            "main;run;score": 5,
            "main;run;merge": 3,
            "main;flush": 2,
        }

    def test_folded_output_is_byte_stable(self, profiler):
        assert profiler.folded() == profiler.folded()

    def test_speedscope_validates_and_weights_match(self, profiler, tmp_path):
        path = profiler.write_speedscope(tmp_path / "p.speedscope.json", "t")
        obj = json.loads(path.read_text())
        assert validate_speedscope(obj) == 3  # three distinct stacks
        profile = obj["profiles"][0]
        assert profile["unit"] == "seconds"
        # 10 samples at 10ms each = 0.1s of attributed wall clock.
        assert sum(profile["weights"]) == pytest.approx(0.1)
        assert profile["endValue"] == pytest.approx(0.1)
        frames = obj["shared"]["frames"]
        for sample in profile["samples"]:
            assert all(0 <= index < len(frames) for index in sample)

    def test_top_frames_rank_self_then_total(self, profiler):
        frames = profiler.top_frames(3)
        assert frames[0] == {"frame": "score", "self": 5, "total": 5}
        assert frames[1] == {"frame": "merge", "self": 3, "total": 3}
        assert frames[2] == {"frame": "flush", "self": 2, "total": 2}
        # "run" and "main" are hot by total but never the leaf.
        all_frames = top_frames_from_folded(profiler.folded(), 10)
        by_name = {frame["frame"]: frame for frame in all_frames}
        assert by_name["run"] == {"frame": "run", "self": 0, "total": 8}
        assert by_name["main"] == {"frame": "main", "self": 0, "total": 10}


class TestParseFolded:
    def test_skips_malformed_lines(self):
        text = "a;b 3\nnot-a-count x\n\n   \nc 2\nc 1\n"
        assert parse_folded(text) == {"a;b": 3, "c": 3}

    def test_speedscope_schema_rejects_garbage(self):
        with pytest.raises(SchemaError):
            validate_speedscope({"profiles": []})
