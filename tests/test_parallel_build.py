"""Parallel build determinism: ``--workers N`` must be byte-identical
to a serial build — same partitions, same merge trail, same graph
counters — on every dataset family."""

import multiprocessing
import time
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EngineConfig, Reconciler
from repro.datasets import generate_cora_dataset, generate_pim_dataset
from repro.datasets.cora import CoraConfig
from repro.domains import CoraDomainModel, PimDomainModel
from repro.perf.parallel import ParallelScorer, domain_spec

# Stats fields that must be identical between serial and parallel runs.
# Cache/memo/prefilter counters are deliberately excluded: workers keep
# process-local memos, so those counters describe cache behaviour, not
# algorithm decisions.
_DETERMINISTIC_STATS = (
    "pair_nodes",
    "value_nodes",
    "graph_nodes",
    "candidate_pairs",
    "recomputations",
    "merges",
    "non_merges",
    "premerged_unions",
    "constraint_pairs",
    "fusions",
    "queue_front_pushes",
    "queue_back_pushes",
    "skipped_weak_fanout",
    "per_class_nodes",
)


def _run(store, domain, workers):
    config = replace(EngineConfig(), workers=workers)
    engine = Reconciler(store, domain, config)
    result = engine.run()
    return result, engine.stats


def _assert_identical(store, domain_cls, workers):
    serial_result, serial_stats = _run(store, domain_cls(), 1)
    parallel_result, parallel_stats = _run(store, domain_cls(), workers)
    assert parallel_result.partitions == serial_result.partitions
    for field_name in _DETERMINISTIC_STATS:
        assert getattr(parallel_stats, field_name) == getattr(
            serial_stats, field_name
        ), field_name
    assert parallel_stats.parallel_workers == workers
    assert not any(
        event.kind == "parallel_fallback" for event in parallel_stats.degradations
    )


@pytest.mark.parametrize("name", ["A", "B", "C", "D"])
def test_pim_datasets_identical(name):
    dataset = generate_pim_dataset(name, scale=0.2)
    _assert_identical(dataset.store, PimDomainModel, 2)


def test_cora_identical(tiny_cora):
    _assert_identical(tiny_cora.store, CoraDomainModel, 2)


def test_four_workers_identical(tiny_pim_a):
    _assert_identical(tiny_pim_a.store, PimDomainModel, 4)


@given(
    name=st.sampled_from(["A", "B", "D"]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=4, deadline=None)
def test_random_micro_worlds_identical(name, seed):
    dataset = generate_pim_dataset(name, scale=0.15, seed=seed)
    _assert_identical(dataset.store, PimDomainModel, 2)


class TestFallback:
    def test_local_domain_falls_back_to_serial(self, tiny_pim_a):
        class LocalDomain(PimDomainModel):
            """Not importable by workers: defined inside a function."""

        assert domain_spec(LocalDomain()) is None
        with pytest.raises(ValueError):
            ParallelScorer(LocalDomain(), 2)

        config = replace(EngineConfig(), workers=4)
        engine = Reconciler(tiny_pim_a.store, LocalDomain(), config)
        result = engine.run()
        assert engine.stats.parallel_workers == 1
        assert any(
            event.kind == "parallel_fallback" for event in engine.stats.degradations
        )
        # Degraded, but correct: identical to a plain serial run.
        baseline = Reconciler(tiny_pim_a.store, PimDomainModel()).run()
        assert result.partitions == baseline.partitions

    def test_single_worker_pool_rejected(self):
        with pytest.raises(ValueError):
            ParallelScorer(PimDomainModel(), 1)


class TestPoolHygiene:
    def test_failed_score_leaves_no_worker_processes(self):
        """A failure inside ``score`` shuts the pool down before the
        exception propagates — a failed build never leaks children."""
        domain = PimDomainModel()
        scorer = ParallelScorer(domain, 2)
        class_name = domain.class_order()[0]
        pairs = [("x", "y"), ("y", "z")]
        values = {"x": {}, "y": {}, "z": {}}
        # An unknown channel name makes every worker raise KeyError.
        with pytest.raises(Exception):
            scorer.score(class_name, ("no-such-channel",), pairs, values)
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()


class TestCliIntegration:
    def test_workers_and_stats_flags(self, tmp_path, capsys):
        from repro.cli import main
        from repro.datasets.io import save_dataset

        dataset = generate_pim_dataset("A", scale=0.15)
        save_dataset(dataset, tmp_path / "ds")
        baseline = main(["reconcile", str(tmp_path / "ds"), "--output",
                         str(tmp_path / "serial.json")])
        assert baseline == 0
        code = main(["reconcile", str(tmp_path / "ds"), "--workers", "2",
                     "--stats", "--output", str(tmp_path / "parallel.json")])
        assert code == 0
        err = capsys.readouterr().err
        assert "cache effectiveness" in err
        assert "workers=2" in err
        assert (tmp_path / "serial.json").read_text() == (
            tmp_path / "parallel.json"
        ).read_text()

    def test_evaluate_accepts_workers(self, tmp_path, capsys):
        from repro.cli import main
        from repro.datasets.io import save_dataset

        dataset = generate_cora_dataset(
            CoraConfig(n_papers=12, n_citations=60, n_authors=25, n_venues=6)
        )
        save_dataset(dataset, tmp_path / "cora")
        code = main(["evaluate", str(tmp_path / "cora"), "--workers", "2", "--stats"])
        assert code == 0
        captured = capsys.readouterr()
        assert "pairwise" in captured.out
        assert "pair-score memo" in captured.err
