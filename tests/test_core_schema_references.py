"""Tests for the schema model and reference store."""

import pytest

from repro.core import (
    Attribute,
    AttributeKind,
    Reference,
    ReferenceStore,
    Schema,
    SchemaClass,
    SchemaError,
)
from repro.domains import PIM_SCHEMA


class TestSchema:
    def test_attribute_kinds(self):
        atomic = Attribute.atomic("name")
        assoc = Attribute.association("coAuthor", target="Person")
        assert atomic.is_atomic and not atomic.is_association
        assert assoc.is_association and assoc.target == "Person"

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            SchemaClass("X", [Attribute.atomic("a"), Attribute.atomic("a")])

    def test_duplicate_class_rejected(self):
        cls = SchemaClass("X", [Attribute.atomic("a")])
        with pytest.raises(SchemaError):
            Schema([cls, cls])

    def test_dangling_association_target_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                [SchemaClass("X", [Attribute.association("to", target="Missing")])]
            )

    def test_lookup(self):
        person = PIM_SCHEMA.cls("Person")
        assert person.attribute("email").kind is AttributeKind.ATOMIC
        assert person.attribute("coAuthor").kind is AttributeKind.ASSOCIATION
        assert "Person" in PIM_SCHEMA
        assert "Robot" not in PIM_SCHEMA
        with pytest.raises(SchemaError):
            PIM_SCHEMA.cls("Robot")
        with pytest.raises(SchemaError):
            person.attribute("shoeSize")

    def test_pim_schema_matches_figure_1a(self):
        person = PIM_SCHEMA.cls("Person")
        assert {a.name for a in person.atomic_attributes} == {"name", "email"}
        assert {a.name for a in person.association_attributes} == {
            "coAuthor",
            "emailContact",
        }
        article = PIM_SCHEMA.cls("Article")
        assert {a.name for a in article.association_attributes} == {
            "authoredBy",
            "publishedIn",
        }


class TestReference:
    def test_values_frozen_and_cleaned(self):
        reference = Reference("r1", "Person", {"name": ("A",), "email": ()})
        assert reference.get("name") == ("A",)
        assert "email" not in reference.values  # empty dropped
        assert reference.first("name") == "A"
        assert reference.first("email") is None
        assert reference.has("name") and not reference.has("email")


class TestReferenceStore:
    def test_round_trip(self):
        store = ReferenceStore(
            PIM_SCHEMA, [Reference("r1", "Person", {"name": ("A",)})]
        )
        assert len(store) == 1
        assert "r1" in store
        assert store.get("r1").first("name") == "A"
        assert store.class_counts()["Person"] == 1

    def test_unknown_class_rejected(self):
        store = ReferenceStore(PIM_SCHEMA)
        with pytest.raises(SchemaError):
            store.add(Reference("r1", "Robot", {}))

    def test_unknown_attribute_rejected(self):
        store = ReferenceStore(PIM_SCHEMA)
        with pytest.raises(SchemaError):
            store.add(Reference("r1", "Person", {"shoeSize": ("42",)}))

    def test_duplicate_id_rejected(self):
        store = ReferenceStore(PIM_SCHEMA, [Reference("r1", "Person", {})])
        with pytest.raises(ValueError):
            store.add(Reference("r1", "Person", {}))

    def test_validate_dangling_association(self):
        store = ReferenceStore(
            PIM_SCHEMA,
            [Reference("r1", "Person", {"coAuthor": ("ghost",)})],
        )
        with pytest.raises(SchemaError):
            store.validate()

    def test_validate_wrong_target_class(self):
        store = ReferenceStore(
            PIM_SCHEMA,
            [
                Reference("v1", "Venue", {"name": ("SIGMOD",)}),
                Reference("r1", "Person", {"coAuthor": ("v1",)}),
            ],
        )
        with pytest.raises(SchemaError):
            store.validate()

    def test_validate_accepts_consistent_store(self, example1_store):
        example1_store.validate()
        assert len(example1_store.of_class("Person")) == 9
        assert len(example1_store.of_class("Article")) == 2
        assert len(example1_store.of_class("Venue")) == 2
