"""Union-find tests, including a networkx connected-components oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import ConstraintViolation, UnionFind


class TestBasics:
    def test_lazy_registration(self):
        uf = UnionFind()
        assert uf.find("a") == "a"
        assert "a" in uf and len(uf) == 1

    def test_union_and_connected(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")
        assert not uf.connected("a", "d")
        assert uf.group_count() == 2  # {a,b,c} and {d}

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        count = uf.union_count
        uf.union("a", "b")
        assert uf.union_count == count

    def test_groups_deterministic(self):
        uf = UnionFind(["c", "a", "b"])
        uf.union("a", "c")
        assert uf.groups() == [["a", "c"], ["b"]]
        assert uf.members("c") == ["a", "c"]


class TestEnemies:
    def test_enemy_blocks_union(self):
        uf = UnionFind()
        uf.add_enemy("a", "b")
        assert uf.union("a", "b") is None
        assert not uf.connected("a", "b")
        assert uf.are_enemies("a", "b")

    def test_enemy_inherited_through_union(self):
        uf = UnionFind()
        uf.add_enemy("a", "b")
        uf.union("a", "c")
        # c's cluster now contains a, so c and b are enemies.
        assert uf.are_enemies("c", "b")
        assert uf.union("c", "b") is None

    def test_enemy_inherited_from_absorbed_side(self):
        uf = UnionFind()
        uf.add_enemy("a", "b")
        uf.union("b", "c")
        uf.union("c", "d")
        assert uf.union("d", "a") is None

    def test_cannot_make_connected_pair_enemies(self):
        uf = UnionFind()
        uf.union("a", "b")
        with pytest.raises(ConstraintViolation):
            uf.add_enemy("a", "b")

    def test_enemies_of(self):
        uf = UnionFind()
        uf.add_enemy("a", "b")
        uf.add_enemy("a", "c")
        assert uf.enemies_of("a") == {uf.find("b"), uf.find("c")}


@st.composite
def union_sequences(draw):
    n = draw(st.integers(2, 12))
    items = [f"n{i}" for i in range(n)]
    n_ops = draw(st.integers(0, 25))
    ops = [
        (
            draw(st.sampled_from(items)),
            draw(st.sampled_from(items)),
        )
        for _ in range(n_ops)
    ]
    return items, ops


class TestAgainstNetworkxOracle:
    @given(union_sequences())
    @settings(max_examples=60)
    def test_matches_connected_components(self, data):
        items, ops = data
        uf = UnionFind(items)
        graph = nx.Graph()
        graph.add_nodes_from(items)
        for left, right in ops:
            uf.union(left, right)
            graph.add_edge(left, right)
        components = list(nx.connected_components(graph))
        assert uf.group_count() == len(components)
        for component in components:
            members = sorted(component)
            for other in members[1:]:
                assert uf.connected(members[0], other)

    @given(union_sequences())
    @settings(max_examples=40)
    def test_enemy_pairs_never_connect(self, data):
        items, ops = data
        if len(items) < 2:
            return
        uf = UnionFind(items)
        uf.add_enemy(items[0], items[1])
        for left, right in ops:
            uf.union(left, right)
        assert not uf.connected(items[0], items[1])
