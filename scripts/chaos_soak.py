#!/usr/bin/env python
"""Chaos soak harness for the supervised execution layer.

Runs dataset B under randomized-but-seeded fault schedules — worker
kills (once / persistent), worker hangs, injected comparator faults
for real candidate pairs, speculative-iterate faults (children
SIGKILLed or raising mid-chunk), and sharded-runner faults (a shard's
engine process SIGKILLed or raising; the runner's ladder re-runs it
in-parent) — and asserts the robustness contract of the supervised
execution layer for every schedule:

* the run never raises and never leaks a worker process;
* a run that completes with **no** poisoned pairs produces partitions
  byte-identical to the clean serial baseline;
* a run that completes **with** poisoned pairs matches the *oracle*: a
  serial run with exactly those pairs suppressed — proving the damage
  is precisely the quarantined pairs, never the whole run;
* a run that does not complete stops with a clean ``stop_reason``.

Usage::

    PYTHONPATH=src python scripts/chaos_soak.py --schedules 20 --seed 0
    PYTHONPATH=src python scripts/chaos_soak.py \\
        --faults kill_once,raise_pair --report chaos_report.json

``--faults`` pins the schedule kinds (cycled) instead of drawing them
from the seeded RNG; CI's chaos-smoke job uses it for two fixed
schedules. Exits non-zero if any schedule violates the contract.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import sys
import tempfile
import time
from pathlib import Path
from random import Random

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import EngineConfig, Reconciler  # noqa: E402
from repro.core.nodes import pair_key  # noqa: E402
from repro.datasets import generate_pim_dataset  # noqa: E402
from repro.domains import PimDomainModel  # noqa: E402
from repro.runtime import ChaosInjector  # noqa: E402

FAULT_KINDS = (
    "none",
    "kill_once",
    "kill_persistent",
    "hang_once",
    "raise_pair",
    "iterate_kill",
    "iterate_raise",
    "shard_kill",
    "shard_raise",
)

#: Schedules exercising the speculative iterate executor instead of the
#: build pool: serial build (workers=1), speculative iterate. Their
#: faults can only drop speculation chunks — the contract is always
#: partition identity, never an oracle match.
ITERATE_KINDS = ("iterate_kill", "iterate_raise")

#: Schedules exercising the sharded runner (``--shards 2`` with worker
#: processes): shard 0's engine process is SIGKILLed or raises before
#: it runs. The runner's ladder re-runs the shard in-process in the
#: parent (a ``shard_fallback`` degradation) and the merged result must
#: stay byte-identical to the serial baseline.
SHARD_KINDS = ("shard_kill", "shard_raise")

DATASET = "B"
DATASET_SEED = 0
TASK_TIMEOUT = 3.0  # must undercut HANG_SECONDS so hangs are detected
HANG_SECONDS = 30.0
RETRY_BACKOFF = 0.01


def _store(scale: float):
    return generate_pim_dataset(DATASET, scale=scale, seed=DATASET_SEED).store


def _partition_text(result) -> str:
    return json.dumps(result.partitions, sort_keys=True)


def _baseline(scale: float):
    """Clean serial run: canonical partitions + the candidate-pair pool
    the raise-injector draws real pairs from."""
    engine = Reconciler(_store(scale), PimDomainModel())
    result = engine.run()
    assert result.completed, "clean serial baseline must converge"
    # Raise targets must flow through the worker pool, so draw them from
    # the blocking candidates: force-created graph nodes are scored
    # in-parent and would dodge a worker-side injector.
    pairs = sorted(
        pair
        for index in engine._block_indexes.values()
        for pair in index.pairs()
    )
    return _partition_text(result), pairs


def _chaos_for(kind: str, rng: Random, marker_dir: str, pair_pool):
    if kind == "none":
        return None
    if kind == "kill_once":
        return ChaosInjector(kill_at_chunk=0, marker_dir=marker_dir)
    if kind == "kill_persistent":
        return ChaosInjector(kill_at_chunk=0)
    if kind == "hang_once":
        return ChaosInjector(
            hang_at_chunk=0, hang_seconds=HANG_SECONDS, marker_dir=marker_dir
        )
    if kind == "raise_pair":
        return ChaosInjector(raise_pairs=(rng.choice(pair_pool),))
    if kind == "iterate_kill":
        # Persistent: every forked iterate child SIGKILLs itself, so
        # every chunk (and its retries) dies — the supervisor must walk
        # its ladder down to the plain serial loop.
        return ChaosInjector(kill_every=1)
    if kind == "iterate_raise":
        # A deterministic comparator bug in ~1/4 of iterate chunks:
        # those chunks are dropped and their keys recomputed in-line.
        return ChaosInjector(raise_pair_crc_mod=4, raise_pair_crc_rem=rng.randrange(4))
    if kind == "shard_kill":
        # Marker-claimed: only the first (child-process) attempt dies;
        # the in-parent fallback rung is untouched by construction.
        return ChaosInjector(shard_kill=0, marker_dir=marker_dir)
    if kind == "shard_raise":
        return ChaosInjector(shard_raise=0, marker_dir=marker_dir)
    raise SystemExit(f"unknown fault kind {kind!r}")


def _wait_for_children(deadline: float = 10.0) -> list:
    """Give pool teardown a moment; returns whatever is still alive."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        children = multiprocessing.active_children()
        if not children:
            return []
        time.sleep(0.1)
    return multiprocessing.active_children()


def _run_shard_schedule(row: dict, kind: str, args, baseline_text, markers):
    """Sharded-runner schedule: kill/raise shard 0, demand identity.

    The contract is strict: the run never raises (the ladder absorbs
    the dead or raising shard process), leaks no worker, records the
    fallback as a ``shard_fallback`` degradation, and the merged
    partition is byte-identical to the clean serial baseline.
    """
    from repro.shard import merged_result, run_sharded

    chaos = _chaos_for(kind, None, str(markers), None)
    try:
        sharded = run_sharded(
            _store(args.scale),
            PimDomainModel(),
            EngineConfig(),
            shards=2,
            shard_workers=2,
            chaos=chaos,
        )
        result = merged_result(sharded)
    except Exception as exc:  # the contract: this must never happen
        row["error"] = f"unhandled {type(exc).__name__}: {exc}"
        return row
    finally:
        leaked = _wait_for_children()
        row["leaked_workers"] = [child.pid for child in leaked]

    row.update(
        completed=result.completed,
        stop_reason=result.stop_reason,
        fixpoint_rounds=sharded.fixpoint.rounds,
        degradations=sorted({e.kind for e in result.stats.degradations}),
    )
    if row["leaked_workers"]:
        row["error"] = f"leaked workers: {row['leaked_workers']}"
        return row
    if not result.completed:
        row["error"] = f"sharded run did not complete: {result.stop_reason}"
        return row
    if _partition_text(result) != baseline_text:
        row["error"] = "sharded partitions differ from clean serial baseline"
        return row
    row["outcome"] = "identical"
    row["ok"] = True
    return row


def _run_schedule(index: int, kind: str, rng: Random, args, baseline_text, pair_pool):
    row = {"schedule": index, "kind": kind, "ok": False}
    with tempfile.TemporaryDirectory() as tmp:
        markers = Path(tmp) / "markers"
        markers.mkdir()
        if kind in SHARD_KINDS:
            return _run_shard_schedule(row, kind, args, baseline_text, markers)
        poison_log = Path(tmp) / "poisoned_pairs.jsonl"
        chaos = _chaos_for(kind, rng, str(markers), pair_pool)
        if kind in ITERATE_KINDS:
            # Serial build keeps build-side chaos out of the way; the
            # fault schedule targets only the speculative iterate.
            config = EngineConfig(
                iterate_workers=args.iterate_workers,
                iterate_batch=32,
                task_timeout=TASK_TIMEOUT,
                retry_backoff=RETRY_BACKOFF,
                poison_log=str(poison_log),
            )
        else:
            config = EngineConfig(
                workers=args.workers,
                task_timeout=TASK_TIMEOUT,
                retry_backoff=RETRY_BACKOFF,
                poison_log=str(poison_log),
            )
        engine = Reconciler(_store(args.scale), PimDomainModel(), config)
        engine.chaos = chaos
        try:
            result = engine.run()
        except Exception as exc:  # the contract: this must never happen
            row["error"] = f"unhandled {type(exc).__name__}: {exc}"
            return row
        finally:
            leaked = _wait_for_children()
            row["leaked_workers"] = [child.pid for child in leaked]

        stats = engine.stats
        row.update(
            completed=result.completed,
            stop_reason=result.stop_reason,
            counters={
                "task_retries": stats.task_retries,
                "task_timeouts": stats.task_timeouts,
                "pool_rebuilds": stats.pool_rebuilds,
                "pairs_poisoned": stats.pairs_poisoned,
                "speculation_dropped": stats.speculation_dropped,
            },
            speculation={
                "speculated": stats.speculated_nodes,
                "hits": stats.speculation_hits,
                "invalidated": stats.speculation_invalidated,
            },
            degradations=sorted({e.kind for e in stats.degradations}),
        )
        poisons = []
        if poison_log.exists():
            poisons = [
                json.loads(line) for line in poison_log.read_text().splitlines()
            ]
        row["poisoned"] = poisons
        if len(poisons) != stats.pairs_poisoned:
            row["error"] = "poison log disagrees with pairs_poisoned counter"
            return row

        if row["leaked_workers"]:
            row["error"] = f"leaked workers: {row['leaked_workers']}"
            return row

        if not result.completed:
            if result.stop_reason and result.stop_reason != "converged":
                row["outcome"] = "clean_stop"
                row["ok"] = True
            else:
                row["error"] = "incomplete run without a stop_reason"
            return row

        if not poisons:
            if _partition_text(result) == baseline_text:
                row["outcome"] = "identical"
                row["ok"] = True
            else:
                row["error"] = "partitions differ from clean serial baseline"
            return row

        # Poisoned pairs: the oracle is a serial run suppressing exactly
        # those pairs. Matching it proves the damage is contained to the
        # quarantined pairs' decisions.
        oracle = Reconciler(_store(args.scale), PimDomainModel())
        oracle.suppressed_pairs = {
            pair_key(entry["pair"][0], entry["pair"][1]) for entry in poisons
        }
        oracle_result = oracle.run()
        if _partition_text(oracle_result) == _partition_text(result):
            row["outcome"] = "oracle_match"
            row["ok"] = True
        else:
            row["error"] = "poisoned run differs from its suppression oracle"
        return row
    return row  # pragma: no cover - unreachable


def _expected_counters_fired(row: dict) -> str | None:
    """Schedules whose fault is guaranteed to fire must show it."""
    counters = row.get("counters", {})
    kind = row["kind"]
    if kind in ("kill_once", "kill_persistent") and not counters.get("pool_rebuilds"):
        return "kill schedule recorded no pool rebuild"
    if kind == "hang_once" and not counters.get("task_timeouts"):
        return "hang schedule recorded no task timeout"
    if kind == "raise_pair" and not counters.get("pairs_poisoned"):
        return "raise schedule poisoned no pair"
    if kind in ITERATE_KINDS and not counters.get("speculation_dropped"):
        return "iterate fault schedule dropped no speculation chunk"
    if kind == "iterate_kill" and "parallel_fallback" not in row.get(
        "degradations", []
    ):
        return "persistent iterate kills did not descend the ladder to serial"
    if kind in ITERATE_KINDS and counters.get("pairs_poisoned"):
        return "iterate fault schedule must never poison a pair"
    if kind in SHARD_KINDS and "shard_fallback" not in row.get("degradations", []):
        return "shard fault schedule recorded no shard_fallback degradation"
    if kind == "none" and any(counters.values()):
        return f"clean schedule recorded supervision activity: {counters}"
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--schedules", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--iterate-workers", type=int, default=2,
        help="speculative iterate workers for iterate_* schedules",
    )
    parser.add_argument(
        "--faults", default=None, metavar="KIND[,KIND...]",
        help=f"pin the schedule kinds (cycled) from {', '.join(FAULT_KINDS)}",
    )
    parser.add_argument("--report", default=None, metavar="PATH")
    args = parser.parse_args(argv)

    rng = Random(args.seed)
    baseline_text, pair_pool = _baseline(args.scale)
    digest = hashlib.sha256(baseline_text.encode()).hexdigest()
    print(
        f"baseline: dataset {DATASET} scale={args.scale} "
        f"partition digest {digest[:16]}..."
    )

    if args.faults:
        pinned = args.faults.split(",")
        kinds = [pinned[i % len(pinned)] for i in range(args.schedules)]
    else:
        kinds = [rng.choice(FAULT_KINDS) for _ in range(args.schedules)]

    rows = []
    failures = 0
    for index, kind in enumerate(kinds):
        started = time.monotonic()
        row = _run_schedule(index, kind, rng, args, baseline_text, pair_pool)
        row["seconds"] = round(time.monotonic() - started, 3)
        if row["ok"]:
            expectation_miss = _expected_counters_fired(row)
            if expectation_miss:
                row["ok"] = False
                row["error"] = expectation_miss
        if not row["ok"]:
            failures += 1
        status = "ok" if row["ok"] else f"FAIL ({row.get('error')})"
        print(
            f"  [{index:02d}] {kind:<16} {row.get('outcome', '-'):<12} "
            f"{row['seconds']:6.2f}s  {status}"
        )
        rows.append(row)

    report = {
        "dataset": DATASET,
        "scale": args.scale,
        "workers": args.workers,
        "seed": args.seed,
        "baseline_digest": digest,
        "schedules": rows,
        "failures": failures,
    }
    if args.report:
        Path(args.report).parent.mkdir(parents=True, exist_ok=True)
        Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote report to {args.report}")
    print(
        f"chaos soak: {len(rows) - failures}/{len(rows)} schedules clean "
        f"(baseline digest {digest[:16]}...)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
