#!/usr/bin/env python
"""Record end-to-end reconciliation timings into ``BENCH_scaling.json``.

Runs the serial engine over the five benchmark datasets (PIM A-D and
Cora) and records build/iterate wall-clock, graph counters, and cache
effectiveness. The committed ``BENCH_scaling.json`` at the repo root is
the perf-regression baseline that CI's bench-smoke job checks against.

Every bench row also writes a full run manifest (``run.json``, the
same versioned schema ``--run-dir`` runs emit) under
``<output-stem>_runs/<block>/<dataset>/`` and stores its repo-relative
path in the row's ``manifest`` key — so bench history and run history
share one schema and ``repro diff`` can compare bench generations.

Usage:

    PYTHONPATH=src python scripts/record_bench.py                # full + quick
    PYTHONPATH=src python scripts/record_bench.py --quick        # quick only
    PYTHONPATH=src python scripts/record_bench.py --quick \\
        --check-against BENCH_scaling.json --output /tmp/bench.json
    PYTHONPATH=src python scripts/record_bench.py --workers-check

``--check-against`` compares dataset B's build+iterate against the
named baseline file and exits non-zero on a >2x regression.
``--workers-check`` additionally runs every dataset with ``workers=4``
and fails unless the partition is identical to the serial one.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import EngineConfig, Reconciler  # noqa: E402
from repro.datasets import generate_cora_dataset, generate_pim_dataset  # noqa: E402
from repro.domains import CoraDomainModel, PimDomainModel  # noqa: E402
from repro.obs import (  # noqa: E402
    MetricsRegistry,
    Telemetry,
    Tracer,
    build_manifest,
    write_manifest,
)
from repro.similarity import clear_similarity_caches  # noqa: E402

DATASETS = ["A", "B", "C", "D", "cora"]
QUICK_SCALE = 0.3
FULL_SCALE = 1.0

# Timings of the seed engine (before the performance layer), measured
# on the same reference machine that recorded the committed baseline.
# Kept in the JSON so the speedup is readable without git archaeology.
BASELINE_PRE_PR = {
    "B": {"build_seconds": 1.62, "iterate_seconds": 0.16, "total_seconds": 1.78}
}

REGRESSION_FACTOR = 2.0
REGRESSION_DATASET = "B"


def _generate(name: str, scale: float):
    if name == "cora":
        # Cora has one natural size; scale only affects the PIM worlds.
        return generate_cora_dataset()
    return generate_pim_dataset(name, scale=scale)


def _domain(name: str):
    return CoraDomainModel() if name == "cora" else PimDomainModel()


def _rate(hits: int, misses: int) -> float | None:
    total = hits + misses
    return round(hits / total, 4) if total else None


def _measure(
    name: str,
    scale: float,
    workers: int = 1,
    manifest_dir: Path | None = None,
    iterate_workers: int = 1,
    iterate_batch: int = 64,
) -> tuple[object, dict]:
    # Module-level LRU caches would let dataset N+1 free-ride on
    # dataset N's comparisons; clear them so every row is cold.
    clear_similarity_caches()
    dataset = _generate(name, scale)
    config_kwargs: dict = {}
    if workers > 1:
        config_kwargs["workers"] = workers
    if iterate_workers > 1:
        config_kwargs["iterate_workers"] = iterate_workers
        config_kwargs["iterate_batch"] = iterate_batch
    config = EngineConfig(**config_kwargs)
    # Span tracing + the metrics registry make every row attributable
    # to a phase (which build stage, which cache) instead of a single
    # wall-clock number; overhead is a handful of coarse spans.
    telemetry = Telemetry(tracer=Tracer(), metrics=MetricsRegistry())
    engine = Reconciler(dataset.store, _domain(name), config, telemetry=telemetry)
    if manifest_dir is not None and dataset.gold.entity_of:
        # Coarse sampling: bench manifests exist for cross-run diffing,
        # not convergence plots, so keep the committed files small.
        engine.attach_convergence(dataset.gold.entity_of, every=500)
    result = engine.run()
    stats = engine.stats
    row = {
        "references": len(dataset.store),
        "build_seconds": round(stats.build_seconds, 3),
        "iterate_seconds": round(stats.iterate_seconds, 3),
        "total_seconds": round(stats.build_seconds + stats.iterate_seconds, 3),
        "candidate_pairs": stats.candidate_pairs,
        "pair_nodes": stats.pair_nodes,
        "recomputations": stats.recomputations,
        "merges": stats.merges,
        "feature_cache_hit_rate": _rate(
            stats.feature_cache_hits, stats.feature_cache_misses
        ),
        "pair_memo_hit_rate": _rate(stats.pair_memo_hits, stats.pair_memo_misses),
        "prefilter_skips": stats.prefilter_skips,
        "values_cache_hit_rate": _rate(
            stats.values_cache_hits, stats.values_cache_misses
        ),
        "contacts_cache_hit_rate": _rate(
            stats.contacts_cache_hits, stats.contacts_cache_misses
        ),
        # Supervised-execution counters: all zero on a healthy serial
        # run; nonzero values in a bench row mean the measurement ran
        # through retries / pool rebuilds and its timings are suspect.
        "supervision": {
            "task_retries": stats.task_retries,
            "task_timeouts": stats.task_timeouts,
            "pool_rebuilds": stats.pool_rebuilds,
            "pairs_poisoned": stats.pairs_poisoned,
        },
        # Speculative-iterate counters: all zero on a serial row. The
        # hit rate is the fraction of speculated nodes whose score was
        # validated and committed in place of an in-line recomputation.
        "speculation": {
            "iterate_workers": stats.iterate_workers,
            "speculated": stats.speculated_nodes,
            "hits": stats.speculation_hits,
            "invalidated": stats.speculation_invalidated,
            "dropped": stats.speculation_dropped,
            "hit_rate": _rate(
                stats.speculation_hits,
                stats.speculated_nodes - stats.speculation_hits,
            ),
        },
        # Phase-attributed telemetry snapshot: a regression in
        # total_seconds points at the phase (and cache) that moved.
        "metrics": {
            "phase_seconds": telemetry.tracer.phase_timings(),
            "cache_hit_rates": telemetry.metrics.cache_hit_rates(),
            "recompute_seconds": _histogram_summary(
                telemetry.metrics, "repro_recompute_seconds"
            ),
            "queue_depth": _histogram_summary(
                telemetry.metrics, "repro_queue_depth"
            ),
        },
        # Workload attribution: where a timing regression would live.
        # The top-3 blocks by candidate pairs plus per-class blocking
        # skew — a bench row whose skew jumped explains its own
        # slowdown without re-running anything.
        "hotspots": _hotspot_digest(engine),
    }
    if manifest_dir is not None:
        # One run manifest per bench row: bench history and run history
        # share the run.json schema, so `repro diff` works across bench
        # generations the same way it works across --run-dir runs.
        telemetry.metrics.absorb_run_info(dataset=dataset.name, algorithm="depgraph")
        manifest = build_manifest(dataset=dataset, reconciler=engine, result=result)
        row["manifest"] = str(write_manifest(manifest, manifest_dir))
    return result, row


def _hotspot_digest(engine) -> dict | None:
    """Top-3 hot blocks + per-class skew from the engine's sketch."""
    hotspots = getattr(engine, "hotspots", None)
    if hotspots is None:
        return None
    summary = hotspots.summary(top=3)
    return {
        "top_blocks": summary["top_blocks"],
        "skew": {
            class_name: {
                "blocks": stats["blocks"],
                "gini": stats["gini"],
                "max_block": stats["max_block"],
                "max_pair_share": stats["max_pair_share"],
                "oversized": stats["oversized"],
            }
            for class_name, stats in summary["skew"].items()
        },
    }


def _histogram_summary(registry, name: str) -> dict | None:
    """count/sum/mean of one histogram, or None when it never fired."""
    if name not in registry:
        return None
    histogram = registry.histogram(name)
    if not histogram.count:
        return None
    return {
        "count": histogram.count,
        "sum": round(histogram.sum, 6),
        "mean": round(histogram.sum / histogram.count, 9),
    }


def _block(scale: float, runs_dir: Path | None = None, base_dir: Path | None = None) -> dict:
    rows = {}
    for name in DATASETS:
        manifest_dir = runs_dir / name if runs_dir is not None else None
        _, rows[name] = _measure(name, scale, manifest_dir=manifest_dir)
        if "manifest" in rows[name] and base_dir is not None:
            # Committed paths are repo-relative so the baseline file is
            # readable from any checkout location.
            rows[name]["manifest"] = str(
                Path(rows[name]["manifest"]).resolve().relative_to(base_dir.resolve())
            )
        print(
            f"  {name:>4s}: {rows[name]['references']:6d} refs  "
            f"build {rows[name]['build_seconds']:6.3f}s  "
            f"iterate {rows[name]['iterate_seconds']:6.3f}s",
            file=sys.stderr,
        )
    return {"scale": scale, "datasets": rows}


SPECULATIVE_SCALES = (0.3, 1.0, 2.0)
SPECULATIVE_WORKERS = 4
SPECULATIVE_BATCH = 256


def _speculative_block() -> dict:
    """Serial vs speculative iterate rows: dataset B across the three
    PIM scales, plus Cora (which has one natural size).

    Each entry pairs the serial iterate time with the speculative one
    and asserts partition identity; iterate-phase speedup is only
    meaningful when ``machine.cpu_count`` exceeds the worker count —
    on fewer cores the workers time-slice and speculation can only add
    overhead, which the recorded numbers then show honestly.
    """
    entries = []
    targets = [("B", scale) for scale in SPECULATIVE_SCALES] + [("cora", 1.0)]
    for name, scale in targets:
        serial_result, serial_row = _measure(name, scale)
        spec_result, spec_row = _measure(
            name,
            scale,
            iterate_workers=SPECULATIVE_WORKERS,
            iterate_batch=SPECULATIVE_BATCH,
        )
        identical = spec_result.partitions == serial_result.partitions
        serial_iterate = serial_row["iterate_seconds"]
        spec_iterate = spec_row["iterate_seconds"]
        speedup = round(serial_iterate / spec_iterate, 3) if spec_iterate else None
        entries.append(
            {
                "dataset": name,
                "scale": scale,
                "identical_partitions": identical,
                "serial_iterate_seconds": serial_iterate,
                "speculative_iterate_seconds": spec_iterate,
                "iterate_speedup": speedup,
                "iterate_workers": SPECULATIVE_WORKERS,
                "iterate_batch": SPECULATIVE_BATCH,
                "speculation": spec_row["speculation"],
            }
        )
        print(
            f"  {name:>4s}@{scale}: iterate {serial_iterate:6.3f}s -> "
            f"{spec_iterate:6.3f}s ({speedup}x) "
            f"hit_rate={spec_row['speculation']['hit_rate']} "
            f"{'identical' if identical else 'DIVERGED'}",
            file=sys.stderr,
        )
    return {"workers": SPECULATIVE_WORKERS, "entries": entries}


SHARDING_TARGETS = (("B", 1.0), ("B", 2.0), ("cora", 1.0))
SHARDING_SHARDS = 2


def _sharding_block() -> dict:
    """Serial vs sharded (``--shards 2 --shard-workers 2``) rows.

    Each entry asserts partition identity and records the shard plan's
    shape — components, cut-pair count/fraction, packing Gini — the
    cross-shard fixpoint's rounds, and per-shard wall-clock + peak RSS
    (measured in the shard's own worker process, so the RSS column is
    the real per-shard memory footprint, the number that decides
    whether a dataset fits a smaller machine when sharded).
    """
    from repro.shard import merged_result, run_sharded

    entries = []
    for name, scale in SHARDING_TARGETS:
        clear_similarity_caches()
        dataset = _generate(name, scale)
        domain = _domain(name)
        serial = Reconciler(dataset.store, domain, EngineConfig()).run()
        clear_similarity_caches()
        sharded = run_sharded(
            dataset.store,
            domain,
            EngineConfig(),
            shards=SHARDING_SHARDS,
            shard_workers=SHARDING_SHARDS,
        )
        result = merged_result(sharded)
        plan = sharded.plan
        identical = result.partitions == serial.partitions
        entries.append(
            {
                "dataset": name,
                "scale": scale,
                "shards": plan.shards,
                "identical_partitions": identical,
                "components": plan.component_count,
                "candidate_pairs": plan.candidate_pairs,
                "cut_pairs": len(plan.cut_pairs),
                "cut_fraction": round(plan.cut_fraction, 6),
                "gini": round(plan.gini, 4),
                "fixpoint_rounds": sharded.fixpoint.rounds,
                "fixpoint_messages": sharded.fixpoint.messages,
                "per_shard": [
                    {
                        "shard": outcome.shard,
                        "references": outcome.references,
                        "seconds": outcome.seconds,
                        "peak_rss_kb": outcome.peak_rss_kb,
                        "in_process": outcome.ran_in_process,
                    }
                    for outcome in sharded.outcomes
                ],
            }
        )
        rss = "/".join(str(o.peak_rss_kb) for o in sharded.outcomes)
        print(
            f"  {name:>4s}@{scale}: components={plan.component_count} "
            f"cut={len(plan.cut_pairs)} ({plan.cut_fraction:.4f}) "
            f"rounds={sharded.fixpoint.rounds} rss_kb={rss} "
            f"{'identical' if identical else 'DIVERGED'}",
            file=sys.stderr,
        )
    return {
        "shards": SHARDING_SHARDS,
        "shard_workers": SHARDING_SHARDS,
        "entries": entries,
    }


def _iterate_check(scale: float, iterate_workers: int) -> bool:
    """Partition identity, serial vs speculative iterate, dataset B."""
    serial_result, _ = _measure(REGRESSION_DATASET, scale)
    spec_result, spec_row = _measure(
        REGRESSION_DATASET, scale, iterate_workers=iterate_workers
    )
    identical = spec_result.partitions == serial_result.partitions
    print(
        f"  {REGRESSION_DATASET:>4s}: iterate_workers={iterate_workers} "
        f"hit_rate={spec_row['speculation']['hit_rate']} "
        f"{'identical' if identical else 'DIVERGED'}",
        file=sys.stderr,
    )
    return identical


def _workers_check(scale: float, workers: int) -> bool:
    ok = True
    for name in DATASETS:
        serial_result, _ = _measure(name, scale)
        parallel_result, _ = _measure(name, scale, workers=workers)
        identical = parallel_result.partitions == serial_result.partitions
        print(
            f"  {name:>4s}: workers={workers} "
            f"{'identical' if identical else 'DIVERGED'}",
            file=sys.stderr,
        )
        ok &= identical
    return ok


def _check_regression(current: dict, baseline_path: Path) -> bool:
    baseline = json.loads(baseline_path.read_text())
    compared = False
    ok = True
    for block_name in ("quick", "full"):
        mine = current.get(block_name, {}).get("datasets", {}).get(REGRESSION_DATASET)
        theirs = (
            baseline.get(block_name, {}).get("datasets", {}).get(REGRESSION_DATASET)
        )
        if not mine or not theirs:
            continue
        compared = True
        budget = theirs["total_seconds"] * REGRESSION_FACTOR
        verdict = "ok" if mine["total_seconds"] <= budget else "REGRESSION"
        print(
            f"  {block_name}/{REGRESSION_DATASET}: {mine['total_seconds']:.3f}s "
            f"vs baseline {theirs['total_seconds']:.3f}s "
            f"(budget {budget:.3f}s) -> {verdict}",
            file=sys.stderr,
        )
        ok &= verdict == "ok"
    if not compared:
        print("  no comparable block found in baseline", file=sys.stderr)
        return False
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_scaling.json", help="where to write the JSON"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"record only the quick block (PIM scale {QUICK_SCALE})",
    )
    parser.add_argument(
        "--workers-check", action="store_true",
        help="also verify workers=4 partitions match serial on every dataset",
    )
    parser.add_argument(
        "--iterate-check", action="store_true",
        help="also verify --iterate-workers 2 partitions match serial on "
        "dataset B (quick scale)",
    )
    parser.add_argument(
        "--check-against", metavar="BASELINE",
        help="fail (exit 1) if dataset B regresses >2x vs this baseline JSON",
    )
    args = parser.parse_args(argv)

    payload: dict = {
        "generated_by": "scripts/record_bench.py",
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            # Parallel rows (workers / iterate_workers) only measure a
            # real speedup when this exceeds the worker count.
            "cpu_count": os.cpu_count(),
        },
        "baseline_pre_pr": BASELINE_PRE_PR,
    }
    output = Path(args.output)
    # Per-row run manifests live beside the baseline JSON, one
    # directory per block/dataset: <stem>_runs/quick/B/run.json etc.
    runs_root = output.parent / f"{output.stem}_runs"
    base_dir = output.parent if str(output.parent) != "" else Path(".")
    print(f"quick block (scale {QUICK_SCALE}):", file=sys.stderr)
    payload["quick"] = _block(QUICK_SCALE, runs_root / "quick", base_dir)
    if not args.quick:
        print(f"full block (scale {FULL_SCALE}):", file=sys.stderr)
        payload["full"] = _block(FULL_SCALE, runs_root / "full", base_dir)
        print("speculative iterate block:", file=sys.stderr)
        payload["speculative_iterate"] = _speculative_block()
        print("sharding block:", file=sys.stderr)
        payload["sharding"] = _sharding_block()

    failures = []
    if args.workers_check:
        print("workers check (quick scale):", file=sys.stderr)
        if not _workers_check(QUICK_SCALE, workers=4):
            failures.append("workers=4 partitions diverged from serial")
    if args.iterate_check:
        print("iterate check (quick scale):", file=sys.stderr)
        if not _iterate_check(QUICK_SCALE, iterate_workers=2):
            failures.append("iterate_workers=2 partitions diverged from serial")
    if args.check_against:
        print(f"regression check vs {args.check_against}:", file=sys.stderr)
        if not _check_regression(payload, Path(args.check_against)):
            failures.append(
                f"dataset {REGRESSION_DATASET} regressed more than "
                f"{REGRESSION_FACTOR}x"
            )

    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}", file=sys.stderr)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
