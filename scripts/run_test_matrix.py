#!/usr/bin/env python
"""Shard the pytest suite by file across CI jobs.

Deterministically splits ``tests/test_*.py`` (sorted, round-robin) into
``--shard-count`` bins and runs pytest on the ``--shard-index``-th bin,
so a CI matrix of N jobs covers every file exactly once regardless of
how long any single file takes:

    python scripts/run_test_matrix.py --shard-index 0 --shard-count 3
    python scripts/run_test_matrix.py --shard-index 1 --shard-count 3 --all -- -x

``--all`` clears the repo's default ``addopts`` (which deselects the
``slow``/``soak`` markers to keep local tier-1 wall-time down) so CI
runs the complete matrix, long identity tests included. Everything
after ``--`` is passed to pytest verbatim. A shard whose files all
deselect (pytest exit code 5) counts as success — the *matrix* covers
everything, each bin need not.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def shard_files(files: list[Path], index: int, count: int) -> list[Path]:
    """Round-robin bin *index* of *count* over the sorted file list."""
    return [path for i, path in enumerate(files) if i % count == index]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shard-index", type=int, default=0)
    parser.add_argument("--shard-count", type=int, default=1)
    parser.add_argument(
        "--all",
        action="store_true",
        help="clear default addopts so slow/soak-marked tests run too",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print this shard's files without running pytest",
    )
    args, pytest_args = parser.parse_known_args(argv)
    if pytest_args and pytest_args[0] == "--":
        pytest_args = pytest_args[1:]
    if not 0 <= args.shard_index < args.shard_count:
        parser.error(
            f"--shard-index {args.shard_index} not in "
            f"[0, {args.shard_count})"
        )

    files = sorted((REPO / "tests").glob("test_*.py"))
    if not files:
        print("no test files found", file=sys.stderr)
        return 2
    selected = shard_files(files, args.shard_index, args.shard_count)
    print(
        f"shard {args.shard_index}/{args.shard_count}: "
        f"{len(selected)}/{len(files)} files"
    )
    for path in selected:
        print(f"  {path.relative_to(REPO)}")
    if args.list:
        return 0
    if not selected:
        return 0

    cmd = [sys.executable, "-m", "pytest"]
    if args.all:
        cmd += ["-o", "addopts=", "-q"]
    cmd += [str(path.relative_to(REPO)) for path in selected]
    cmd += pytest_args
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    rc = subprocess.call(cmd, cwd=REPO, env=env)
    # Exit code 5 = "no tests collected": an all-deselected bin is fine.
    return 0 if rc == 5 else rc


if __name__ == "__main__":
    raise SystemExit(main())
